package dataset

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/hurricane"
	"repro/internal/pressio"
)

var tieredDims = []int{4, 4, 4} // 64 floats = 256 bytes per cell

func tieredBytes() int64 { return 4 * 64 }

// TestTieredPointerIdentity: every Acquire of a resident cell returns
// the SAME *pressio.Data — the property stats.SummaryOf's
// (pointer, version) cache keys on to share summaries across requests.
func TestTieredPointerIdentity(t *testing.T) {
	c, err := NewTiered(TieredConfig{CapacityBytes: 10 * tieredBytes()})
	if err != nil {
		t.Fatal(err)
	}
	h1, err := c.Acquire("P", 0, tieredDims)
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Release()
	h2, err := c.Acquire("P", 0, tieredDims)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if h1.Data() != h2.Data() {
		t.Fatal("second Acquire returned a different buffer pointer")
	}
	st := c.Stats()
	if st.Misses != 1 || st.MemHits != 1 {
		t.Fatalf("want 1 miss + 1 mem hit, got %+v", st)
	}
	want, _ := hurricane.Field("P", 0, tieredDims)
	if got := h1.Data().Float32(); got[7] != want.Float32()[7] {
		t.Fatalf("cached cell diverges from hurricane.Field: %v vs %v", got[7], want.Float32()[7])
	}
}

// TestTieredSpillDigestMatchesManifest pins the spill format against the
// corpus manifest: a cell spilled by the tiered cache is byte-identical
// (same name, same SHA-256) to the file BuildCorpus writes for the same
// (field, step, dims, seed 0) cell.
func TestTieredSpillDigestMatchesManifest(t *testing.T) {
	corpusDir := t.TempDir()
	m, _, err := BuildCorpus(corpusDir, []string{"P", "TC"}, 2, tieredDims, 0)
	if err != nil {
		t.Fatal(err)
	}
	spillDir := t.TempDir()
	c, err := NewTiered(TieredConfig{CapacityBytes: 10 * tieredBytes(), SpillDir: spillDir})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"P", "TC"} {
		for step := 0; step < 2; step++ {
			h, err := c.Acquire(field, step, tieredDims)
			if err != nil {
				t.Fatal(err)
			}
			h.Release()
		}
	}
	for _, e := range m.Entries {
		raw, err := os.ReadFile(filepath.Join(spillDir, e.File))
		if err != nil {
			t.Fatalf("spill missing for corpus file %s: %v", e.File, err)
		}
		sum := sha256.Sum256(raw)
		if got := hex.EncodeToString(sum[:]); got != e.SHA256 {
			t.Fatalf("%s: spill digest %s != manifest digest %s", e.File, got, e.SHA256)
		}
		side, err := os.ReadFile(filepath.Join(spillDir, e.File+".sha256"))
		if err != nil {
			t.Fatalf("sidecar missing: %v", err)
		}
		if string(side) != e.SHA256+"\n" {
			t.Fatalf("%s: sidecar %q != manifest digest", e.File, side)
		}
	}
}

// TestTieredMmapReload: an evicted-then-reacquired cell reloads from the
// spill file byte-identically and (on platforms with mmap) without
// copying, and the mapping is returned once the cell is evicted and
// unpinned.
func TestTieredMmapReload(t *testing.T) {
	c, err := NewTiered(TieredConfig{CapacityBytes: tieredBytes(), SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Acquire("P", 0, tieredDims)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	h, err = c.Acquire("TC", 0, tieredDims) // capacity is one cell: evicts P.t00
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("want 1 eviction, got %+v", st)
	}

	h, err = c.Acquire("P", 0, tieredDims)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DiskHits != 1 {
		t.Fatalf("reload should be a disk hit, got %+v", st)
	}
	want, _ := hurricane.Field("P", 0, tieredDims)
	got := h.Data().Float32()
	for i, v := range want.Float32() {
		if got[i] != v {
			t.Fatalf("reloaded element %d = %v, want %v", i, got[i], v)
		}
	}
	// pin the reloaded cell while evicting it, then release: the backing
	// must survive the eviction and be freed only on the last release
	h2, err := c.Acquire("TC", 0, tieredDims)
	if err != nil {
		t.Fatal(err)
	}
	h2.Release()
	if got[0] != want.Float32()[0] {
		t.Fatal("pinned buffer died on eviction")
	}
	h.Release()
	//lint:ignore pressiovet/poolescape double Release is the idempotence contract under test
	h.Release()
	// only resident mappings may remain: the pinned-but-evicted cell's
	// region must be returned on the last release
	if st := c.Stats(); st.MappedBytes > st.ResidentBytes {
		t.Fatalf("evicted+released mapping leaked: %+v", st)
	}
}

// TestTieredTornSpill: a spill file torn by a crash (truncated payload,
// stale sidecar) is detected by the digest check, dropped, and the cell
// regenerated — the cache never serves bytes that don't verify.
func TestTieredTornSpill(t *testing.T) {
	spillDir := t.TempDir()
	c, err := NewTiered(TieredConfig{CapacityBytes: tieredBytes(), SpillDir: spillDir})
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Acquire("P", 0, tieredDims)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	h, err = c.Acquire("TC", 0, tieredDims) // evict P.t00 from memory
	if err != nil {
		t.Fatal(err)
	}
	h.Release()

	path := filepath.Join(spillDir, spillName("P", 0, tieredDims))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil { // torn write
		t.Fatal(err)
	}

	h, err = c.Acquire("P", 0, tieredDims)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	st := c.Stats()
	if st.DiskHits != 0 || st.Misses != 3 {
		t.Fatalf("torn spill must regenerate (2 initial + 1 regen misses, 0 disk hits), got %+v", st)
	}
	want, _ := hurricane.Field("P", 0, tieredDims)
	if h.Data().Float32()[3] != want.Float32()[3] {
		t.Fatal("regenerated cell diverges")
	}
	// the rewrite must verify again
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(repaired)
	side, err := os.ReadFile(path + ".sha256")
	if err != nil {
		t.Fatal(err)
	}
	if string(side) != hex.EncodeToString(sum[:])+"\n" {
		t.Fatal("repaired spill's sidecar does not match its contents")
	}
}

// TestTieredUnmanaged: a cell larger than the whole tier is served
// through without evicting the working set.
func TestTieredUnmanaged(t *testing.T) {
	c, err := NewTiered(TieredConfig{CapacityBytes: tieredBytes()})
	if err != nil {
		t.Fatal(err)
	}
	small, err := c.Acquire("P", 0, tieredDims)
	if err != nil {
		t.Fatal(err)
	}
	defer small.Release()
	big, err := c.Acquire("P", 0, []int{8, 8, 8}) // 2 KiB > 256 B tier
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Evictions != 0 || st.ResidentBytes != tieredBytes() {
		t.Fatalf("oversized cell must not thrash the tier: %+v", st)
	}
	big.Release()
	// a second acquire is a fresh miss, not a hit
	big2, err := c.Acquire("P", 0, []int{8, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	big2.Release()
	if st := c.Stats(); st.Misses != 3 {
		t.Fatalf("want 3 misses (small + 2 unmanaged), got %+v", st)
	}
}

// TestTieredConcurrentAcquire: concurrent Acquires of one cold cell
// share a single load and all observe the same pointer (run under -race).
func TestTieredConcurrentAcquire(t *testing.T) {
	c, err := NewTiered(TieredConfig{CapacityBytes: 10 * tieredBytes()})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	ptrs := make([]*pressio.Data, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			h, err := c.Acquire("W", 3, tieredDims)
			if err != nil {
				t.Error(err)
				return
			}
			ptrs[i] = h.Data()
			h.Release()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ptrs[i] != ptrs[0] {
			t.Fatal("concurrent acquires observed different buffers")
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("want exactly 1 load, got %+v", st)
	}
}

// TestTieredBadField: loader errors propagate and don't wedge the cell.
func TestTieredBadField(t *testing.T) {
	c, err := NewTiered(TieredConfig{CapacityBytes: tieredBytes()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire("NOPE", 0, tieredDims); err == nil {
		t.Fatal("want error for unknown field")
	}
	// the failed key must not poison later acquires
	h, err := c.Acquire("P", 0, tieredDims)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
}

// TestTieredPluginPipeline composes the Figure-2 stack with the tiered
// cache as the local_cache stage: loader → tiered cache → sampler.
func TestTieredPluginPipeline(t *testing.T) {
	c, err := NewTiered(TieredConfig{CapacityBytes: 100 * tieredBytes()})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewTieredPlugin(c, []string{"P", "TC", "W"}, 4, tieredDims)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	s, err := NewSampler(p, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 {
		t.Fatalf("sampler over 12 cells at 0.5 should pick 6, got %d", s.Len())
	}
	metas, err := s.LoadMetadataAll()
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 0 {
		t.Fatalf("metadata listing must not load payloads, got %+v", st)
	}
	for i, meta := range metas {
		d, err := s.LoadData(i)
		if err != nil {
			t.Fatal(err)
		}
		field, ok := meta.Attrs.GetString("dataset:field")
		if !ok {
			t.Fatal("metadata missing dataset:field")
		}
		step, ok := meta.Attrs.GetInt("dataset:step")
		if !ok {
			t.Fatal("metadata missing dataset:step")
		}
		// the plugin serves the same shared buffer a direct Acquire pins
		h, err := c.Acquire(field, int(step), tieredDims)
		if err != nil {
			t.Fatal(err)
		}
		if h.Data() != d {
			t.Fatalf("entry %s: plugin and cache disagree on the buffer", meta.Name)
		}
		h.Release()
		if want := fmt.Sprintf("%s.t%02d", field, step); meta.Name != want {
			t.Fatalf("metadata name %q, want %q", meta.Name, want)
		}
	}
	if st := c.Stats(); st.Misses != 6 {
		t.Fatalf("want 6 payload loads, got %+v", st)
	}
}
