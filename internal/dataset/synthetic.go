package dataset

import (
	"fmt"

	"repro/internal/hurricane"
	"repro/internal/pressio"
)

// Synthetic serves the synthetic Hurricane dataset directly from the
// generator — the in-memory data source used by tests and by experiments
// that do not want disk I/O in the measured path. Entries are ordered
// timestep-major: entry i is (field i%13, timestep i/13).
type Synthetic struct {
	fields []string
	steps  int
	dims   []int
}

// NewSynthetic builds a source over the given fields and timestep count
// with the given 3-D dims. Passing nil fields selects all 13.
func NewSynthetic(fields []string, steps int, dims []int) (*Synthetic, error) {
	if fields == nil {
		fields = hurricane.FieldNames
	}
	if steps < 1 || steps > hurricane.Timesteps {
		return nil, fmt.Errorf("synthetic: steps %d out of range [1, %d]", steps, hurricane.Timesteps)
	}
	if len(dims) != 3 {
		return nil, fmt.Errorf("synthetic: want 3 dims, got %v", dims)
	}
	return &Synthetic{fields: fields, steps: steps, dims: dims}, nil
}

// Name implements Plugin.
func (s *Synthetic) Name() string { return "synthetic" }

// Len implements Plugin.
func (s *Synthetic) Len() int { return len(s.fields) * s.steps }

// Field returns the (field, timestep) pair of entry i.
func (s *Synthetic) Field(i int) (string, int) {
	return s.fields[i%len(s.fields)], i / len(s.fields)
}

// LoadMetadata implements Plugin.
func (s *Synthetic) LoadMetadata(i int) (Metadata, error) {
	if err := checkIndex(s, i); err != nil {
		return Metadata{}, err
	}
	field, step := s.Field(i)
	attrs := pressio.Options{}
	attrs.Set("dataset:field", field)
	attrs.Set("dataset:timestep", int64(step))
	attrs.Set("dataset:sparse", hurricane.IsSparse(field))
	return Metadata{
		Name:  fmt.Sprintf("%s.t%02d", field, step),
		DType: pressio.DTypeFloat32,
		Dims:  s.dims,
		Attrs: attrs,
	}, nil
}

// LoadData implements Plugin.
func (s *Synthetic) LoadData(i int) (*pressio.Data, error) {
	if err := checkIndex(s, i); err != nil {
		return nil, err
	}
	field, step := s.Field(i)
	return hurricane.Field(field, step, s.dims)
}

// LoadMetadataAll implements Plugin.
func (s *Synthetic) LoadMetadataAll() ([]Metadata, error) { return loadMetadataAll(s) }

// LoadDataAll implements Plugin.
func (s *Synthetic) LoadDataAll() ([]*pressio.Data, error) { return loadDataAll(s) }

// SetOptions implements Plugin.
func (s *Synthetic) SetOptions(pressio.Options) error { return nil }

// Options implements Plugin.
func (s *Synthetic) Options() pressio.Options {
	o := pressio.Options{}
	o.Set("synthetic:steps", int64(s.steps))
	o.Set("synthetic:fields", append([]string(nil), s.fields...))
	return o
}
