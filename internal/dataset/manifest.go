package dataset

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/hurricane"
)

// ManifestName is the manifest file written next to a generated corpus.
const ManifestName = "MANIFEST.json"

// ManifestEntry pins one corpus file by size and content digest.
type ManifestEntry struct {
	// Name is the dataset entry name, e.g. "P.t07".
	Name string `json:"name"`
	// File is the on-disk base name, e.g. "P.t07_8x8x8.f32".
	File string `json:"file"`
	// Bytes is the payload size.
	Bytes int64 `json:"bytes"`
	// SHA256 is the hex digest of the file contents.
	SHA256 string `json:"sha256"`
}

// Manifest records what a generated corpus contains and the exact
// generator inputs that produced it, so a scenario harness (or a second
// datagen run) can prove an existing corpus is byte-identical to the one
// it wants and reuse it instead of regenerating — and detect a stale or
// tampered corpus instead of silently benchmarking against it.
type Manifest struct {
	Fields  []string        `json:"fields"`
	Steps   int             `json:"steps"`
	Dims    []int           `json:"dims"`
	Seed    uint64          `json:"seed"`
	Entries []ManifestEntry `json:"entries"`
}

// TotalBytes sums the corpus payload sizes.
func (m *Manifest) TotalBytes() int64 {
	var n int64
	for _, e := range m.Entries {
		n += e.Bytes
	}
	return n
}

// SpecMatches reports whether the manifest was generated from exactly
// these inputs.
func (m *Manifest) SpecMatches(fields []string, steps int, dims []int, seed uint64) bool {
	if m.Steps != steps || m.Seed != seed || len(m.Fields) != len(fields) || len(m.Dims) != len(dims) {
		return false
	}
	for i, f := range fields {
		if m.Fields[i] != f {
			return false
		}
	}
	for i, d := range dims {
		if m.Dims[i] != d {
			return false
		}
	}
	return true
}

// Verify re-hashes every manifest entry against the files in dir,
// returning the first mismatch (missing file, size drift, or digest
// drift).
func (m *Manifest) Verify(dir string) error {
	for _, e := range m.Entries {
		path := filepath.Join(dir, e.File)
		raw, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("manifest: %s: %w", e.Name, err)
		}
		if int64(len(raw)) != e.Bytes {
			return fmt.Errorf("manifest: %s: %d bytes on disk, manifest says %d", e.File, len(raw), e.Bytes)
		}
		sum := sha256.Sum256(raw)
		if got := hex.EncodeToString(sum[:]); got != e.SHA256 {
			return fmt.Errorf("manifest: %s: content digest %s, manifest says %s", e.File, got, e.SHA256)
		}
	}
	return nil
}

// WriteManifest persists the manifest atomically into dir.
func WriteManifest(dir string, m *Manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, ManifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadManifest loads dir's manifest; a missing manifest is an error the
// caller treats as "no cached corpus".
func ReadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("manifest: %s: %w", dir, err)
	}
	return &m, nil
}

// BuildCorpus materializes the hurricane corpus fields × steps at dims
// under seed into dir, writing a manifest beside the data. If dir already
// holds a manifest generated from the same spec whose files verify, the
// corpus is reused as-is and cached reports true — the harness-side cache
// that keeps repeated scenario runs from regenerating (and re-hashing is
// what makes the reuse safe, not just plausible). A corpus whose spec
// differs is regenerated in place; a corpus whose bytes drifted from its
// own manifest is an error, because something else wrote into the
// directory and silently rebuilding would hide that.
func BuildCorpus(dir string, fields []string, steps int, dims []int, seed uint64) (m *Manifest, cached bool, err error) {
	if prev, rerr := ReadManifest(dir); rerr == nil && prev.SpecMatches(fields, steps, dims, seed) {
		if verr := prev.Verify(dir); verr != nil {
			return nil, false, fmt.Errorf("cached corpus in %s does not match its manifest: %w", dir, verr)
		}
		return prev, true, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, false, err
	}
	m = &Manifest{
		Fields: append([]string(nil), fields...),
		Steps:  steps,
		Dims:   append([]int(nil), dims...),
		Seed:   seed,
	}
	for _, field := range fields {
		for step := 0; step < steps; step++ {
			data, err := hurricane.FieldSeeded(field, step, dims, seed)
			if err != nil {
				return nil, false, err
			}
			name := fmt.Sprintf("%s.t%02d", field, step)
			path, err := WriteRaw(dir, name, data)
			if err != nil {
				return nil, false, err
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				return nil, false, err
			}
			sum := sha256.Sum256(raw)
			m.Entries = append(m.Entries, ManifestEntry{
				Name:   name,
				File:   filepath.Base(path),
				Bytes:  int64(len(raw)),
				SHA256: hex.EncodeToString(sum[:]),
			})
		}
	}
	if err := WriteManifest(dir, m); err != nil {
		return nil, false, err
	}
	return m, false, nil
}
