package pressio

import (
	"errors"
	"testing"
)

// fakeCompressor doubles as a registry test fixture and a metrics-group
// target: "compression" stores the input length, decompression zero-fills.
type fakeCompressor struct {
	opts Options
}

func (f *fakeCompressor) Name() string { return "fake" }

func (f *fakeCompressor) Compress(in *Data) (*Data, error) {
	return NewByte(make([]byte, in.ByteSize()/2)), nil
}

func (f *fakeCompressor) Decompress(compressed *Data, out *Data) error {
	for i := 0; i < out.Len(); i++ {
		out.Set(i, 0)
	}
	return nil
}

func (f *fakeCompressor) SetOptions(o Options) error {
	if f.opts == nil {
		f.opts = Options{}
	}
	f.opts.Merge(o)
	return nil
}

func (f *fakeCompressor) Options() Options { return f.opts }

func (f *fakeCompressor) Configuration() Options {
	c := Options{}
	c.Set(CfgThreadSafe, true)
	return c
}

// recordingMetric counts hook invocations.
type recordingMetric struct {
	BaseMetric
	begins, endsC, beginsD, endsD int
}

func (m *recordingMetric) Name() string        { return "recording" }
func (m *recordingMetric) BeginCompress(*Data) { m.begins++ }
func (m *recordingMetric) EndCompress(_, _ *Data, _ error) {
	m.endsC++
}
func (m *recordingMetric) BeginDecompress(*Data) { m.beginsD++ }
func (m *recordingMetric) EndDecompress(_, _ *Data, _ error) {
	m.endsD++
}
func (m *recordingMetric) Results() Options {
	o := Options{}
	o.Set("recording:begins", int64(m.begins))
	return o
}
func (m *recordingMetric) Configuration() Options {
	c := Options{}
	c.Set(CfgInvalidate, []string{InvalidateErrorAgnostic})
	return c
}

func TestRegistryRoundTrip(t *testing.T) {
	RegisterCompressor("fake-test", func() Compressor { return &fakeCompressor{} })
	c, err := GetCompressor("fake-test")
	if err != nil {
		t.Fatalf("GetCompressor: %v", err)
	}
	if c.Name() != "fake" {
		t.Errorf("Name = %q", c.Name())
	}
	if _, err := GetCompressor("no-such-plugin"); err == nil {
		t.Error("unknown plugin should error")
	}
	found := false
	for _, n := range CompressorNames() {
		if n == "fake-test" {
			found = true
		}
	}
	if !found {
		t.Error("CompressorNames missing fake-test")
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	RegisterCompressor("dup-test", func() Compressor { return &fakeCompressor{} })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	RegisterCompressor("dup-test", func() Compressor { return &fakeCompressor{} })
}

func TestMetricsGroupLifecycle(t *testing.T) {
	m := &recordingMetric{}
	g := &MetricsGroup{Compressor: &fakeCompressor{}, Metrics: []Metric{m}, results: Options{}}

	in := NewFloat32(64)
	compressed, err := g.Compress(in)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	out := NewFloat32(64)
	if err := g.Decompress(compressed, out); err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if m.begins != 1 || m.endsC != 1 || m.beginsD != 1 || m.endsD != 1 {
		t.Errorf("hooks = %d/%d/%d/%d, want 1 each", m.begins, m.endsC, m.beginsD, m.endsD)
	}
	res := g.Results()
	if _, ok := res.GetFloat("time:compress"); !ok {
		t.Error("missing time:compress")
	}
	if _, ok := res.GetFloat("time:decompress"); !ok {
		t.Error("missing time:decompress")
	}
	if v, ok := res.GetInt("recording:begins"); !ok || v != 1 {
		t.Errorf("metric results not merged: %v %v", v, ok)
	}
}

func TestNewMetricsGroupUnknownMetric(t *testing.T) {
	if _, err := NewMetricsGroup(&fakeCompressor{}, "definitely-missing"); err == nil {
		t.Error("unknown metric should error")
	}
}

func TestMetricsGroupSetOptionsPropagates(t *testing.T) {
	c := &fakeCompressor{}
	g := &MetricsGroup{Compressor: c, Metrics: []Metric{&recordingMetric{}}, results: Options{}}
	opts := Options{}
	opts.Set(OptAbs, 1e-4)
	if err := g.SetOptions(opts); err != nil {
		t.Fatalf("SetOptions: %v", err)
	}
	if v, ok := c.Options().GetFloat(OptAbs); !ok || v != 1e-4 {
		t.Errorf("compressor did not receive option: %v %v", v, ok)
	}
}

type failingMetric struct {
	BaseMetric
}

func (failingMetric) Name() string             { return "failing" }
func (failingMetric) Results() Options         { return Options{} }
func (failingMetric) Configuration() Options   { return Options{} }
func (failingMetric) SetOptions(Options) error { return errors.New("boom") }

func TestMetricsGroupSetOptionsReportsMetricError(t *testing.T) {
	g := &MetricsGroup{Metrics: []Metric{failingMetric{}}, results: Options{}}
	if err := g.SetOptions(Options{}); err == nil {
		t.Error("metric SetOptions error should propagate")
	}
}
