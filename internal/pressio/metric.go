package pressio

import (
	"fmt"
	"time"
)

// Invalidation metadata keys and values (paper §4.2). A metric plugin lists
// under CfgInvalidate the compressor option names and/or special classes
// whose change invalidates its cached results.
const (
	// CfgInvalidate is the configuration key under which a metric lists
	// its invalidation triggers ("predictors:invalidate").
	CfgInvalidate = "predictors:invalidate"

	// InvalidateErrorDependent marks a metric sensitive to any
	// compressor setting that affects the permitted error.
	InvalidateErrorDependent = "predictors:error_dependent"

	// InvalidateErrorAgnostic marks a metric that no error setting can
	// affect; it depends only on the input data.
	InvalidateErrorAgnostic = "predictors:error_agnostic"

	// InvalidateRuntime marks a metric dependent on runtime factors
	// (thread counts, placement) rather than on data or error settings.
	InvalidateRuntime = "predictors:runtime"

	// InvalidateNondeterministic marks a metric whose value varies
	// between runs (timings, randomized algorithms) and which may need
	// replication to observe accurately.
	InvalidateNondeterministic = "predictors:nondeterministic"

	// InvalidateTraining is used only by users and the framework to
	// request training-only metrics; metrics never list it themselves.
	InvalidateTraining = "predictors:training"
)

// Metric is the plugin interface for observation modules, mirroring
// libpressio_metrics_plugin (paper Fig. 3). The lifecycle hooks are invoked
// by a MetricsGroup around compressor calls; Results returns the
// accumulated observations.
//
// Error-agnostic metrics typically implement only BeginCompress (observing
// the uncompressed input); error-dependent metrics also implement
// EndDecompress to observe the decompressed output.
type Metric interface {
	// Name returns the registry name of the plugin, e.g. "error_stat".
	Name() string

	// BeginCompress observes the uncompressed input before compression.
	BeginCompress(in *Data)

	// EndCompress observes the input and compressed output (err is the
	// compressor's error, nil on success).
	EndCompress(in, compressed *Data, err error)

	// BeginDecompress observes the compressed payload before decoding.
	BeginDecompress(compressed *Data)

	// EndDecompress observes the compressed payload and the decoded
	// output.
	EndDecompress(compressed, out *Data, err error)

	// Results returns the accumulated observations keyed by
	// "<metric>:<statistic>".
	Results() Options

	// SetOptions applies configuration; unknown keys are ignored.
	SetOptions(Options) error

	// Options returns the current configuration.
	Options() Options

	// Configuration returns immutable metadata, including CfgInvalidate.
	Configuration() Options
}

// BaseMetric provides no-op hook implementations so metric plugins only
// override the hooks they need, as in the C++ API.
type BaseMetric struct{}

// BeginCompress implements Metric with a no-op.
func (BaseMetric) BeginCompress(*Data) {}

// EndCompress implements Metric with a no-op.
func (BaseMetric) EndCompress(_, _ *Data, _ error) {}

// BeginDecompress implements Metric with a no-op.
func (BaseMetric) BeginDecompress(*Data) {}

// EndDecompress implements Metric with a no-op.
func (BaseMetric) EndDecompress(_, _ *Data, _ error) {}

// SetOptions implements Metric by accepting and ignoring all options.
func (BaseMetric) SetOptions(Options) error { return nil }

// Options implements Metric with an empty option set.
func (BaseMetric) Options() Options { return Options{} }

var metrics registry[Metric]

// RegisterMetric adds a metric factory to the global registry. It panics on
// duplicate names; registration happens in package init.
func RegisterMetric(name string, factory func() Metric) {
	metrics.register(name, factory)
}

// GetMetric instantiates a fresh metric by registry name.
func GetMetric(name string) (Metric, error) { return metrics.get(name) }

// MetricNames lists the registered metric plugins, sorted.
func MetricNames() []string { return metrics.names() }

// MetricsGroup couples a compressor with a set of metric plugins and runs
// the lifecycle hooks around each compressor call — the "metrics evaluator"
// object obtained from a scheme in the paper's Fig. 4 sketch. It also
// records wall-clock timings for the compressor itself under
// "time:compress" and "time:decompress" (milliseconds).
type MetricsGroup struct {
	Compressor Compressor
	Metrics    []Metric

	results Options
}

// NewMetricsGroup builds a MetricsGroup over comp with metrics instantiated
// from the registry by name.
func NewMetricsGroup(comp Compressor, metricNames ...string) (*MetricsGroup, error) {
	g := &MetricsGroup{Compressor: comp, results: Options{}}
	for _, name := range metricNames {
		m, err := GetMetric(name)
		if err != nil {
			return nil, err
		}
		g.Metrics = append(g.Metrics, m)
	}
	return g, nil
}

// SetOptions broadcasts options to the compressor and every metric.
func (g *MetricsGroup) SetOptions(opts Options) error {
	if g.Compressor != nil {
		if err := g.Compressor.SetOptions(opts); err != nil {
			return err
		}
	}
	for _, m := range g.Metrics {
		if err := m.SetOptions(opts); err != nil {
			return fmt.Errorf("metric %s: %w", m.Name(), err)
		}
	}
	return nil
}

// Compress runs the compressor with metric hooks around it.
func (g *MetricsGroup) Compress(in *Data) (*Data, error) {
	for _, m := range g.Metrics {
		m.BeginCompress(in)
	}
	var (
		compressed *Data
		err        error
	)
	start := time.Now()
	if g.Compressor != nil {
		compressed, err = g.Compressor.Compress(in)
	}
	g.results.Set("time:compress", time.Since(start).Seconds()*1e3)
	for _, m := range g.Metrics {
		m.EndCompress(in, compressed, err)
	}
	return compressed, err
}

// Decompress runs the decompressor with metric hooks around it.
func (g *MetricsGroup) Decompress(compressed *Data, out *Data) error {
	for _, m := range g.Metrics {
		m.BeginDecompress(compressed)
	}
	var err error
	start := time.Now()
	if g.Compressor != nil {
		err = g.Compressor.Decompress(compressed, out)
	}
	g.results.Set("time:decompress", time.Since(start).Seconds()*1e3)
	for _, m := range g.Metrics {
		m.EndDecompress(compressed, out, err)
	}
	return err
}

// Results merges the results of every metric plus the group's own timings.
func (g *MetricsGroup) Results() Options {
	out := g.results.Clone()
	for _, m := range g.Metrics {
		out.Merge(m.Results())
	}
	return out
}
