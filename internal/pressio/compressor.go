package pressio

import (
	"fmt"
	"sort"
	"sync"
)

// Well-known option and configuration keys shared across plugins.
const (
	// OptAbs is the absolute error bound honoured by every error-bounded
	// compressor in this repository ("pressio:abs").
	OptAbs = "pressio:abs"

	// OptNThreads caps the worker threads a kernel may use for one
	// (de)compression call ("pressio:nthreads"). 0 means "all cores"
	// (the shared pool default), 1 forces the serial path. Thread count
	// never changes the output bytes — it is a pure performance knob.
	OptNThreads = "pressio:nthreads"

	// CfgThreadSafe marks a plugin safe for concurrent use from multiple
	// goroutines after configuration.
	CfgThreadSafe = "pressio:thread_safe"

	// CfgStability documents a plugin's maturity ("stable", "experimental").
	CfgStability = "pressio:stability"
)

// Compressor is the plugin interface for (de)compressors, mirroring
// libpressio_compressor_plugin. Implementations are configured through
// Options and advertise immutable metadata through Configuration.
type Compressor interface {
	// Name returns the registry name of the plugin, e.g. "sz3".
	Name() string

	// Compress encodes in and returns the compressed payload as a byte
	// Data. The input buffer is not modified.
	Compress(in *Data) (*Data, error)

	// Decompress decodes compressed into out. The caller allocates out
	// with the original dtype and dims, as in LibPressio.
	Decompress(compressed *Data, out *Data) error

	// SetOptions applies configuration; unknown keys are ignored so that
	// generic sweep tools can broadcast settings such as pressio:abs.
	SetOptions(Options) error

	// Options returns the current configuration.
	Options() Options

	// Configuration returns immutable metadata about the plugin.
	Configuration() Options
}

// registry is a named factory table; one instance exists per plugin kind.
type registry[T any] struct {
	mu        sync.RWMutex
	factories map[string]func() T
}

func (r *registry[T]) register(name string, factory func() T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.factories == nil {
		r.factories = make(map[string]func() T)
	}
	if _, dup := r.factories[name]; dup {
		panic(fmt.Sprintf("pressio: duplicate plugin registration %q", name))
	}
	r.factories[name] = factory
}

func (r *registry[T]) get(name string) (T, error) {
	r.mu.RLock()
	factory, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		var zero T
		return zero, fmt.Errorf("pressio: no plugin registered as %q (have %v)", name, r.names())
	}
	return factory(), nil
}

func (r *registry[T]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.factories))
	for name := range r.factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

var compressors registry[Compressor]

// RegisterCompressor adds a compressor factory to the global registry.
// It panics on duplicate names; registration happens in package init.
func RegisterCompressor(name string, factory func() Compressor) {
	compressors.register(name, factory)
}

// GetCompressor instantiates a fresh compressor by registry name.
func GetCompressor(name string) (Compressor, error) {
	return compressors.get(name)
}

// CompressorNames lists the registered compressor plugins, sorted.
func CompressorNames() []string { return compressors.names() }
