package pressio

import (
	"fmt"
	"sort"
)

// Opaque wraps a value that should be carried in an Options structure but
// excluded from stable hashing and serialization — the Go analogue of the
// void* entries (CUDA streams, MPI communicators) that LibPressio's option
// hasher skips.
type Opaque struct{ Value any }

// Options is an introspectable string-keyed configuration structure, the Go
// analogue of pressio_options. Values are restricted to bool, int64,
// float64, string, []string, []byte, and Opaque. Integer literals of other
// widths are normalized to int64 on Set.
//
// Keys follow the LibPressio "<plugin>:<setting>" convention, e.g.
// "pressio:abs" or "sz3:quant_bins".
type Options map[string]any

// Set stores a value under key, normalizing integer types to int64 and
// float32 to float64. Unsupported types are wrapped in Opaque so they are
// carried but excluded from hashing.
func (o Options) Set(key string, value any) {
	switch v := value.(type) {
	case bool, int64, float64, string, []string, []byte, Opaque:
		o[key] = v
	case int:
		o[key] = int64(v)
	case int32:
		o[key] = int64(v)
	case uint32:
		o[key] = int64(v)
	case uint64:
		o[key] = int64(v)
	case float32:
		o[key] = float64(v)
	default:
		o[key] = Opaque{Value: value}
	}
}

// GetBool returns the bool stored under key.
func (o Options) GetBool(key string) (bool, bool) {
	v, ok := o[key].(bool)
	return v, ok
}

// GetInt returns the int64 stored under key.
func (o Options) GetInt(key string) (int64, bool) {
	v, ok := o[key].(int64)
	return v, ok
}

// GetFloat returns the float64 stored under key. An int64 value is
// converted, since sweep tools frequently write integer literals for
// float-typed settings.
func (o Options) GetFloat(key string) (float64, bool) {
	switch v := o[key].(type) {
	case float64:
		return v, true
	case int64:
		return float64(v), true
	}
	return 0, false
}

// GetString returns the string stored under key.
func (o Options) GetString(key string) (string, bool) {
	v, ok := o[key].(string)
	return v, ok
}

// GetStrings returns the []string stored under key.
func (o Options) GetStrings(key string) ([]string, bool) {
	v, ok := o[key].([]string)
	return v, ok
}

// GetBytes returns the []byte stored under key.
func (o Options) GetBytes(key string) ([]byte, bool) {
	v, ok := o[key].([]byte)
	return v, ok
}

// Keys returns the option keys in sorted order.
func (o Options) Keys() []string {
	keys := make([]string, 0, len(o))
	for k := range o {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clone returns a shallow copy of the options (slice values are shared).
func (o Options) Clone() Options {
	out := make(Options, len(o))
	for k, v := range o {
		out[k] = v
	}
	return out
}

// Merge copies every entry of other into o, overwriting existing keys.
func (o Options) Merge(other Options) {
	for k, v := range other {
		o[k] = v
	}
}

// String renders the options deterministically for logging.
func (o Options) String() string {
	s := "{"
	for i, k := range o.Keys() {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%v", k, o[k])
	}
	return s + "}"
}
