// Package pressio provides the core LibPressio-style abstractions that the
// rest of the repository builds on: n-dimensional typed data buffers
// (Data), introspectable option structures (Options), compressor plugins
// (Compressor), metrics plugins with compression lifecycle hooks (Metric),
// and name-based plugin registries.
//
// The design mirrors the C++ LibPressio library described in the paper
// "LibPressio-Predict: Flexible and Fast Infrastructure For Inferring
// Compression Performance" (SC-W 2023): compressors and metrics are
// configured through generic option structures so that tools such as
// predict-bench can introspect, hash, and sweep configurations without
// compile-time knowledge of the plugins involved.
package pressio

import "fmt"

// DType identifies the element type stored in a Data buffer.
type DType int

const (
	// DTypeByte is an opaque byte buffer, used for compressed payloads.
	DTypeByte DType = iota
	// DTypeFloat32 is IEEE-754 binary32.
	DTypeFloat32
	// DTypeFloat64 is IEEE-754 binary64.
	DTypeFloat64
	// DTypeInt32 is a signed 32-bit integer.
	DTypeInt32
	// DTypeInt64 is a signed 64-bit integer.
	DTypeInt64
)

// Size returns the size in bytes of one element of the type.
func (t DType) Size() int {
	switch t {
	case DTypeByte:
		return 1
	case DTypeFloat32, DTypeInt32:
		return 4
	case DTypeFloat64, DTypeInt64:
		return 8
	}
	return 0
}

// String returns the LibPressio-style name of the type.
func (t DType) String() string {
	switch t {
	case DTypeByte:
		return "byte"
	case DTypeFloat32:
		return "float32"
	case DTypeFloat64:
		return "float64"
	case DTypeInt32:
		return "int32"
	case DTypeInt64:
		return "int64"
	}
	return fmt.Sprintf("DType(%d)", int(t))
}

// ParseDType converts a type name as produced by DType.String back into a
// DType. It reports an error for unknown names.
func ParseDType(s string) (DType, error) {
	switch s {
	case "byte":
		return DTypeByte, nil
	case "float32":
		return DTypeFloat32, nil
	case "float64":
		return DTypeFloat64, nil
	case "int32":
		return DTypeInt32, nil
	case "int64":
		return DTypeInt64, nil
	}
	return 0, fmt.Errorf("pressio: unknown dtype %q", s)
}
