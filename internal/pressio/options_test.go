package pressio

import (
	"strings"
	"testing"
)

func TestOptionsSetNormalizesInts(t *testing.T) {
	o := Options{}
	o.Set("a", 7)          // int
	o.Set("b", int32(8))   // int32
	o.Set("c", uint32(9))  // uint32
	o.Set("d", float32(2)) // float32
	if v, ok := o.GetInt("a"); !ok || v != 7 {
		t.Errorf("int not normalized: %v %v", v, ok)
	}
	if v, ok := o.GetInt("b"); !ok || v != 8 {
		t.Errorf("int32 not normalized: %v %v", v, ok)
	}
	if v, ok := o.GetInt("c"); !ok || v != 9 {
		t.Errorf("uint32 not normalized: %v %v", v, ok)
	}
	if v, ok := o.GetFloat("d"); !ok || v != 2 {
		t.Errorf("float32 not normalized: %v %v", v, ok)
	}
}

func TestOptionsGetFloatAcceptsInt(t *testing.T) {
	o := Options{}
	o.Set("bound", 1)
	if v, ok := o.GetFloat("bound"); !ok || v != 1.0 {
		t.Errorf("GetFloat on int = %v, %v", v, ok)
	}
}

func TestOptionsUnsupportedTypesBecomeOpaque(t *testing.T) {
	o := Options{}
	o.Set("stream", struct{ X int }{1})
	if _, ok := o["stream"].(Opaque); !ok {
		t.Errorf("unsupported type should be wrapped in Opaque, got %T", o["stream"])
	}
}

func TestOptionsKeysSorted(t *testing.T) {
	o := Options{}
	o.Set("z", 1)
	o.Set("a", 2)
	o.Set("m", 3)
	keys := o.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "m" || keys[2] != "z" {
		t.Errorf("Keys = %v, want sorted [a m z]", keys)
	}
}

func TestOptionsCloneAndMerge(t *testing.T) {
	a := Options{}
	a.Set("x", 1)
	b := a.Clone()
	b.Set("x", 2)
	if v, _ := a.GetInt("x"); v != 1 {
		t.Error("Clone should not alias the map")
	}
	a.Merge(b)
	if v, _ := a.GetInt("x"); v != 2 {
		t.Error("Merge should overwrite")
	}
}

func TestOptionsStringDeterministic(t *testing.T) {
	o := Options{}
	o.Set("b", 2)
	o.Set("a", 1)
	s := o.String()
	if !strings.Contains(s, "a=1") || strings.Index(s, "a=1") > strings.Index(s, "b=2") {
		t.Errorf("String not deterministic/sorted: %q", s)
	}
}

func TestOptionsTypedGetters(t *testing.T) {
	o := Options{}
	o.Set("b", true)
	o.Set("s", "hi")
	o.Set("ss", []string{"x", "y"})
	o.Set("by", []byte{1, 2})
	if v, ok := o.GetBool("b"); !ok || !v {
		t.Error("GetBool failed")
	}
	if v, ok := o.GetString("s"); !ok || v != "hi" {
		t.Error("GetString failed")
	}
	if v, ok := o.GetStrings("ss"); !ok || len(v) != 2 {
		t.Error("GetStrings failed")
	}
	if v, ok := o.GetBytes("by"); !ok || len(v) != 2 {
		t.Error("GetBytes failed")
	}
	if _, ok := o.GetInt("missing"); ok {
		t.Error("missing key should not be found")
	}
	if _, ok := o.GetFloat("s"); ok {
		t.Error("GetFloat on string should fail")
	}
}
