package pressio

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func TestDTypeSizes(t *testing.T) {
	cases := map[DType]int{
		DTypeByte:    1,
		DTypeFloat32: 4,
		DTypeFloat64: 8,
		DTypeInt32:   4,
		DTypeInt64:   8,
	}
	for dt, want := range cases {
		if got := dt.Size(); got != want {
			t.Errorf("%v.Size() = %d, want %d", dt, got, want)
		}
	}
	if DType(99).Size() != 0 {
		t.Errorf("unknown dtype size should be 0")
	}
}

func TestParseDTypeRoundTrip(t *testing.T) {
	for _, dt := range []DType{DTypeByte, DTypeFloat32, DTypeFloat64, DTypeInt32, DTypeInt64} {
		got, err := ParseDType(dt.String())
		if err != nil {
			t.Fatalf("ParseDType(%q): %v", dt.String(), err)
		}
		if got != dt {
			t.Errorf("ParseDType(%q) = %v, want %v", dt.String(), got, dt)
		}
	}
	if _, err := ParseDType("complex128"); err == nil {
		t.Error("ParseDType should reject unknown names")
	}
}

func TestDataLenAndByteSize(t *testing.T) {
	d := NewFloat32(4, 5, 6)
	if d.Len() != 120 {
		t.Errorf("Len = %d, want 120", d.Len())
	}
	if d.ByteSize() != 480 {
		t.Errorf("ByteSize = %d, want 480", d.ByteSize())
	}
	empty := &Data{dtype: DTypeFloat32}
	if empty.Len() != 0 {
		t.Errorf("zero-dim Len = %d, want 0", empty.Len())
	}
}

func TestDataAtSetAllTypes(t *testing.T) {
	for _, dt := range []DType{DTypeFloat32, DTypeFloat64, DTypeInt32, DTypeInt64, DTypeByte} {
		d := New(dt, 8)
		d.Set(3, 42)
		if got := d.At(3); got != 42 {
			t.Errorf("%v: At(3) = %v, want 42", dt, got)
		}
		if got := d.At(0); got != 0 {
			t.Errorf("%v: At(0) = %v, want 0", dt, got)
		}
	}
}

func TestDataCloneIsDeep(t *testing.T) {
	d := NewFloat64(3)
	d.Set(0, 1.5)
	c := d.Clone()
	c.Set(0, 9.9)
	if d.At(0) != 1.5 {
		t.Errorf("Clone shares storage: original changed to %v", d.At(0))
	}
	if c.DType() != d.DType() || c.Len() != d.Len() {
		t.Errorf("Clone changed shape/type")
	}
}

func TestDataReshape(t *testing.T) {
	d := NewFloat32(4, 6)
	r, err := d.Reshape(2, 12)
	if err != nil {
		t.Fatalf("Reshape: %v", err)
	}
	r.Set(0, 7)
	if d.At(0) != 7 {
		t.Error("Reshape should share storage")
	}
	if _, err := d.Reshape(5, 5); err == nil {
		t.Error("Reshape should reject mismatched element counts")
	}
}

func TestDataRange(t *testing.T) {
	d := FromFloat32([]float32{3, -1, 4, 1, 5, -9, 2, 6}, 8)
	lo, hi := d.Range()
	if lo != -9 || hi != 6 {
		t.Errorf("Range = (%v, %v), want (-9, 6)", lo, hi)
	}
	d64 := FromFloat64([]float64{2.5}, 1)
	lo, hi = d64.Range()
	if lo != 2.5 || hi != 2.5 {
		t.Errorf("singleton Range = (%v, %v)", lo, hi)
	}
}

func TestDataMarshalRoundTripQuick(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			vals = []float32{0}
		}
		for i, v := range vals {
			if math.IsNaN(float64(v)) {
				vals[i] = 0 // NaN != NaN breaks comparison, not the codec
			}
		}
		d := FromFloat32(vals, len(vals))
		b, err := d.MarshalBinary()
		if err != nil {
			return false
		}
		var got Data
		if err := got.UnmarshalBinary(b); err != nil {
			return false
		}
		if got.DType() != DTypeFloat32 || got.Len() != len(vals) {
			return false
		}
		for i, v := range vals {
			if got.Float32()[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataMarshalRoundTripAllTypes(t *testing.T) {
	for _, dt := range []DType{DTypeByte, DTypeFloat32, DTypeFloat64, DTypeInt32, DTypeInt64} {
		d := New(dt, 2, 3)
		for i := 0; i < d.Len(); i++ {
			d.Set(i, float64(i*3+1))
		}
		b, err := d.MarshalBinary()
		if err != nil {
			t.Fatalf("%v: marshal: %v", dt, err)
		}
		var got Data
		if err := got.UnmarshalBinary(b); err != nil {
			t.Fatalf("%v: unmarshal: %v", dt, err)
		}
		if got.DType() != dt {
			t.Errorf("%v: dtype changed to %v", dt, got.DType())
		}
		if len(got.Dims()) != 2 || got.Dims()[0] != 2 || got.Dims()[1] != 3 {
			t.Errorf("%v: dims changed to %v", dt, got.Dims())
		}
		for i := 0; i < d.Len(); i++ {
			if got.At(i) != d.At(i) {
				t.Errorf("%v: element %d = %v, want %v", dt, i, got.At(i), d.At(i))
			}
		}
	}
}

func TestDataUnmarshalRejectsTruncation(t *testing.T) {
	d := NewFloat32(10)
	b, _ := d.MarshalBinary()
	for _, n := range []int{0, 4, 8, len(b) - 1} {
		var got Data
		if err := got.UnmarshalBinary(b[:n]); err == nil {
			t.Errorf("UnmarshalBinary accepted %d-byte truncation", n)
		}
	}
}

func TestFromFloat32PanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromFloat32 should panic when dims mismatch data length")
		}
	}()
	FromFloat32(make([]float32, 5), 2, 2)
}

func TestTypedAccessorPanicsOnWrongType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Float64 on float32 data should panic")
		}
	}()
	NewFloat32(1).Float64()
}

func TestCheckDims(t *testing.T) {
	if n, err := CheckDims([]int{4, 5, 6}); err != nil || n != 120 {
		t.Errorf("CheckDims = %d, %v", n, err)
	}
	for _, bad := range [][]int{
		nil,
		{0},
		{-3, 4},
		{1 << 62, 1 << 62}, // would overflow int64
		{MaxElements + 1},
	} {
		if _, err := CheckDims(bad); err == nil {
			t.Errorf("CheckDims(%v) accepted", bad)
		}
	}
}

func TestUnmarshalRejectsHugeDims(t *testing.T) {
	// craft a header claiming astronomically large dims (the overflow
	// attack the decompressor fuzzing surfaced)
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(DTypeFloat32))
	b = binary.LittleEndian.AppendUint32(b, 2)
	b = binary.LittleEndian.AppendUint64(b, 1<<62)
	b = binary.LittleEndian.AppendUint64(b, 1<<62)
	var d Data
	if err := d.UnmarshalBinary(b); err == nil {
		t.Error("overflowing dims accepted")
	}
}
