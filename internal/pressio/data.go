package pressio

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Data is an n-dimensional typed buffer, the unit of exchange between
// dataset loaders, compressors, metrics, and predictors. Dims are stored in
// C order: the last dimension varies fastest in memory.
//
// A Data value stores exactly one of the typed backing slices according to
// its DType. The generic At/Set accessors convert through float64, which is
// convenient (and exact for every supported type except very large int64
// values) for statistics code that must work across element types.
type Data struct {
	dtype DType
	dims  []int

	f32 []float32
	f64 []float64
	i32 []int32
	i64 []int64
	by  []byte

	// version counts mutations made through this Data value (Set,
	// UnmarshalBinary). Derived-value caches (stats.Float64Of,
	// stats.SummaryOf) key on (pointer, version) so a mutated buffer
	// never serves stale statistics. Mutating a backing slice obtained
	// from Float64()/Float32()/... directly bypasses the counter; such
	// writes must happen before the buffer is shared with metrics.
	version uint64
}

// NewByte wraps a raw byte buffer (e.g. a compressed payload) in a Data.
// The buffer is used directly, not copied.
func NewByte(b []byte) *Data {
	return &Data{dtype: DTypeByte, dims: []int{len(b)}, by: b}
}

// NewFloat32 allocates a zeroed float32 buffer with the given dims.
func NewFloat32(dims ...int) *Data {
	d := &Data{dtype: DTypeFloat32, dims: cloneDims(dims)}
	d.f32 = make([]float32, d.Len())
	return d
}

// NewFloat64 allocates a zeroed float64 buffer with the given dims.
func NewFloat64(dims ...int) *Data {
	d := &Data{dtype: DTypeFloat64, dims: cloneDims(dims)}
	d.f64 = make([]float64, d.Len())
	return d
}

// NewInt32 allocates a zeroed int32 buffer with the given dims.
func NewInt32(dims ...int) *Data {
	d := &Data{dtype: DTypeInt32, dims: cloneDims(dims)}
	d.i32 = make([]int32, d.Len())
	return d
}

// NewInt64 allocates a zeroed int64 buffer with the given dims.
func NewInt64(dims ...int) *Data {
	d := &Data{dtype: DTypeInt64, dims: cloneDims(dims)}
	d.i64 = make([]int64, d.Len())
	return d
}

// FromFloat32 wraps an existing float32 slice. len(v) must equal the
// product of dims. The slice is used directly, not copied.
func FromFloat32(v []float32, dims ...int) *Data {
	d := &Data{dtype: DTypeFloat32, dims: cloneDims(dims), f32: v}
	if len(v) != d.Len() {
		panic(fmt.Sprintf("pressio: FromFloat32 dims %v need %d elements, got %d", dims, d.Len(), len(v)))
	}
	return d
}

// FromFloat64 wraps an existing float64 slice. len(v) must equal the
// product of dims. The slice is used directly, not copied.
func FromFloat64(v []float64, dims ...int) *Data {
	d := &Data{dtype: DTypeFloat64, dims: cloneDims(dims), f64: v}
	if len(v) != d.Len() {
		panic(fmt.Sprintf("pressio: FromFloat64 dims %v need %d elements, got %d", dims, d.Len(), len(v)))
	}
	return d
}

// New allocates a zeroed buffer of the given type and dims.
func New(t DType, dims ...int) *Data {
	switch t {
	case DTypeFloat32:
		return NewFloat32(dims...)
	case DTypeFloat64:
		return NewFloat64(dims...)
	case DTypeInt32:
		return NewInt32(dims...)
	case DTypeInt64:
		return NewInt64(dims...)
	case DTypeByte:
		d := &Data{dtype: DTypeByte, dims: cloneDims(dims)}
		d.by = make([]byte, d.Len())
		return d
	}
	panic(fmt.Sprintf("pressio: New: unsupported dtype %v", t))
}

func cloneDims(dims []int) []int {
	out := make([]int, len(dims))
	copy(out, dims)
	return out
}

// DType returns the element type of the buffer.
func (d *Data) DType() DType { return d.dtype }

// Dims returns the dimensions of the buffer in C order (last fastest).
// The returned slice must not be modified.
func (d *Data) Dims() []int { return d.dims }

// Len returns the number of elements in the buffer.
func (d *Data) Len() int {
	n := 1
	for _, v := range d.dims {
		n *= v
	}
	if len(d.dims) == 0 {
		return 0
	}
	return n
}

// ByteSize returns the size of the buffer in bytes.
func (d *Data) ByteSize() int { return d.Len() * d.dtype.Size() }

// Float32 returns the backing float32 slice; it panics for other dtypes.
func (d *Data) Float32() []float32 {
	if d.dtype != DTypeFloat32 {
		panic("pressio: Float32 called on " + d.dtype.String() + " data")
	}
	return d.f32
}

// Float64 returns the backing float64 slice; it panics for other dtypes.
func (d *Data) Float64() []float64 {
	if d.dtype != DTypeFloat64 {
		panic("pressio: Float64 called on " + d.dtype.String() + " data")
	}
	return d.f64
}

// Int32 returns the backing int32 slice; it panics for other dtypes.
func (d *Data) Int32() []int32 {
	if d.dtype != DTypeInt32 {
		panic("pressio: Int32 called on " + d.dtype.String() + " data")
	}
	return d.i32
}

// Int64 returns the backing int64 slice; it panics for other dtypes.
func (d *Data) Int64() []int64 {
	if d.dtype != DTypeInt64 {
		panic("pressio: Int64 called on " + d.dtype.String() + " data")
	}
	return d.i64
}

// Bytes returns the backing byte slice; it panics for other dtypes.
func (d *Data) Bytes() []byte {
	if d.dtype != DTypeByte {
		panic("pressio: Bytes called on " + d.dtype.String() + " data")
	}
	return d.by
}

// At returns element i converted to float64.
func (d *Data) At(i int) float64 {
	switch d.dtype {
	case DTypeFloat32:
		return float64(d.f32[i])
	case DTypeFloat64:
		return d.f64[i]
	case DTypeInt32:
		return float64(d.i32[i])
	case DTypeInt64:
		return float64(d.i64[i])
	case DTypeByte:
		return float64(d.by[i])
	}
	panic("pressio: At: unsupported dtype")
}

// Version returns the mutation generation of the buffer. It increases on
// every Set and UnmarshalBinary; equal (pointer, Version) pairs denote
// identical contents, which is what makes per-buffer derived-value caches
// sound.
func (d *Data) Version() uint64 { return d.version }

// Set stores v into element i, converting from float64.
func (d *Data) Set(i int, v float64) {
	d.version++
	switch d.dtype {
	case DTypeFloat32:
		d.f32[i] = float32(v)
	case DTypeFloat64:
		d.f64[i] = v
	case DTypeInt32:
		d.i32[i] = int32(v)
	case DTypeInt64:
		d.i64[i] = int64(v)
	case DTypeByte:
		d.by[i] = byte(v)
	default:
		panic("pressio: Set: unsupported dtype")
	}
}

// Touch records a mutation made directly through a backing slice
// (Float32(), Float64(), ...). Bulk writers that fill the backing storage
// in place must call Touch once afterwards so derived-value caches keyed
// on (pointer, Version) are invalidated.
func (d *Data) Touch() { d.version++ }

// FillFloat64 stores vals into the buffer, converting each element from
// float64 like Set does. len(vals) must equal Len. It is the bulk
// counterpart of per-element Set loops (one version bump, one typed
// loop), which decompressors use to write their output.
func (d *Data) FillFloat64(vals []float64) {
	if len(vals) != d.Len() {
		panic(fmt.Sprintf("pressio: FillFloat64 got %d values for %d elements", len(vals), d.Len()))
	}
	d.version++
	switch d.dtype {
	case DTypeFloat32:
		for i, v := range vals {
			d.f32[i] = float32(v)
		}
	case DTypeFloat64:
		copy(d.f64, vals)
	case DTypeInt32:
		for i, v := range vals {
			d.i32[i] = int32(v)
		}
	case DTypeInt64:
		for i, v := range vals {
			d.i64[i] = int64(v)
		}
	case DTypeByte:
		for i, v := range vals {
			d.by[i] = byte(v)
		}
	default:
		panic("pressio: FillFloat64: unsupported dtype")
	}
}

// Clone returns a deep copy of the buffer.
func (d *Data) Clone() *Data {
	out := &Data{dtype: d.dtype, dims: cloneDims(d.dims)}
	switch d.dtype {
	case DTypeFloat32:
		out.f32 = append([]float32(nil), d.f32...)
	case DTypeFloat64:
		out.f64 = append([]float64(nil), d.f64...)
	case DTypeInt32:
		out.i32 = append([]int32(nil), d.i32...)
	case DTypeInt64:
		out.i64 = append([]int64(nil), d.i64...)
	case DTypeByte:
		out.by = append([]byte(nil), d.by...)
	}
	return out
}

// Reshape returns a view of the same backing storage with new dims. The
// element count must match.
func (d *Data) Reshape(dims ...int) (*Data, error) {
	n := 1
	for _, v := range dims {
		n *= v
	}
	if n != d.Len() {
		return nil, fmt.Errorf("pressio: reshape %v (%d elements) incompatible with %v (%d elements)", dims, n, d.dims, d.Len())
	}
	out := *d
	out.dims = cloneDims(dims)
	return &out, nil
}

// Range returns the minimum and maximum element values as float64.
// It returns (0, 0) for an empty buffer.
func (d *Data) Range() (lo, hi float64) {
	n := d.Len()
	if n == 0 {
		return 0, 0
	}
	// Specialize the common float32 case: predictors call Range on every
	// inference and the generic At path is measurably slower.
	if d.dtype == DTypeFloat32 {
		l, h := d.f32[0], d.f32[0]
		for _, v := range d.f32[1:] {
			if v < l {
				l = v
			}
			if v > h {
				h = v
			}
		}
		return float64(l), float64(h)
	}
	lo = d.At(0)
	hi = lo
	for i := 1; i < n; i++ {
		v := d.At(i)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// MarshalBinary encodes the buffer (dtype, dims, payload) in a stable
// little-endian format suitable for caching on disk.
func (d *Data) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 16+8*len(d.dims)+d.ByteSize())
	out = binary.LittleEndian.AppendUint32(out, uint32(d.dtype))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(d.dims)))
	for _, v := range d.dims {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	switch d.dtype {
	case DTypeFloat32:
		for _, v := range d.f32 {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
		}
	case DTypeFloat64:
		for _, v := range d.f64 {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	case DTypeInt32:
		for _, v := range d.i32 {
			out = binary.LittleEndian.AppendUint32(out, uint32(v))
		}
	case DTypeInt64:
		for _, v := range d.i64 {
			out = binary.LittleEndian.AppendUint64(out, uint64(v))
		}
	case DTypeByte:
		out = append(out, d.by...)
	}
	return out, nil
}

// UnmarshalBinary decodes a buffer produced by MarshalBinary.
func (d *Data) UnmarshalBinary(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("pressio: data header truncated: %d bytes", len(b))
	}
	dt := DType(binary.LittleEndian.Uint32(b))
	nd := int(binary.LittleEndian.Uint32(b[4:]))
	b = b[8:]
	if len(b) < 8*nd {
		return fmt.Errorf("pressio: data dims truncated")
	}
	dims := make([]int, nd)
	for i := range dims {
		dims[i] = int(binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if _, err := CheckDims(dims); err != nil {
		return fmt.Errorf("pressio: data header: %w", err)
	}
	out := New(dt, dims...)
	if len(b) != out.ByteSize() {
		return fmt.Errorf("pressio: data payload is %d bytes, want %d", len(b), out.ByteSize())
	}
	switch dt {
	case DTypeFloat32:
		for i := range out.f32 {
			out.f32[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
		}
	case DTypeFloat64:
		for i := range out.f64 {
			out.f64[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
	case DTypeInt32:
		for i := range out.i32 {
			out.i32[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
		}
	case DTypeInt64:
		for i := range out.i64 {
			out.i64[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
		}
	case DTypeByte:
		copy(out.by, b)
	}
	out.version = d.version + 1
	*d = *out
	return nil
}

// MaxElements bounds the element count a deserialized header may claim;
// generous for real data, small enough that a corrupt header cannot make
// element-count arithmetic overflow or drive block loops astronomically.
const MaxElements = 1 << 44

// CheckDims validates dimensions decoded from an untrusted stream: every
// dimension must be positive and the element product must stay within
// MaxElements (computed overflow-safely). It returns the product.
func CheckDims(dims []int) (int, error) {
	if len(dims) == 0 {
		return 0, fmt.Errorf("pressio: empty dims")
	}
	total := 1
	for _, d := range dims {
		if d <= 0 {
			return 0, fmt.Errorf("pressio: non-positive dimension %d", d)
		}
		if d > MaxElements || total > MaxElements/d {
			return 0, fmt.Errorf("pressio: dims %v exceed element limit", dims)
		}
		total *= d
	}
	return total, nil
}
