package capacity

import (
	"testing"
)

// testCosts is a hand-picked cost table with easy arithmetic: one cell
// (synth+summary+metrics) costs 1ms at RefElements, compression 2ms.
var testCosts = &Costs{
	SynthNs:    600_000,
	SummaryNs:  300_000,
	MetricsNs:  100_000,
	CompressNs: map[string]float64{"sz3": 2_000_000},
}

func refSpec() Spec {
	return Spec{
		Nodes:         2,
		CoresPerNode:  1,
		Elements:      RefElements,
		PredictPct:    90,
		FitPct:        5,
		InvalidatePct: 5,
		HitRate:       0.5,
		FitCells:      4,
		Compressor:    "sz3",
		OverheadUS:    100,
	}
}

func TestPredictArithmetic(t *testing.T) {
	p, err := Predict(testCosts, refSpec())
	if err != nil {
		t.Fatal(err)
	}
	// miss = 1ms cell + 0.1ms overhead; hit = overhead only
	if p.PredictMissMS != 1.1 {
		t.Errorf("predict_miss_ms = %v, want 1.1", p.PredictMissMS)
	}
	if p.PredictHitMS != 0.1 {
		t.Errorf("predict_hit_ms = %v, want 0.1", p.PredictHitMS)
	}
	// fit = 4 cells × (1ms + 2ms) + overhead
	if p.FitJobMS != 12.1 {
		t.Errorf("fit_job_ms = %v, want 12.1", p.FitJobMS)
	}
	// mean = (90×0.6 + 5×12.1 + 5×0.1)/100 = 1.15ms → 869.6 QPS/node
	if p.MeanRequestMS != 1.15 {
		t.Errorf("mean_request_ms = %v, want 1.15", p.MeanRequestMS)
	}
	if p.NodeQPS < 869 || p.NodeQPS > 870 {
		t.Errorf("node_qps = %v, want ~869.6", p.NodeQPS)
	}
	if p.ClusterQPS != 2*p.NodeQPS {
		t.Errorf("cluster_qps = %v, want 2×node", p.ClusterQPS)
	}
}

func TestPredictScalesWithElements(t *testing.T) {
	small := refSpec()
	small.Elements = RefElements / 8
	ps, err := Predict(testCosts, small)
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := Predict(testCosts, refSpec())
	if ps.NodeQPS <= pr.NodeQPS {
		t.Errorf("smaller grid should raise capacity: %v vs %v", ps.NodeQPS, pr.NodeQPS)
	}
	// an 8× smaller grid costs 8× less per cell
	wantMiss := 1.0/8 + 0.1
	if diff := ps.PredictMissMS - wantMiss; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("predict_miss_ms = %v, want %v", ps.PredictMissMS, wantMiss)
	}
}

func TestPredictMonotonic(t *testing.T) {
	base, _ := Predict(testCosts, refSpec())

	hot := refSpec()
	hot.HitRate = 0.95
	ph, _ := Predict(testCosts, hot)
	if ph.ClusterQPS <= base.ClusterQPS {
		t.Errorf("higher hit rate should raise capacity: %v vs %v", ph.ClusterQPS, base.ClusterQPS)
	}

	wide := refSpec()
	wide.Nodes = 4
	pw, _ := Predict(testCosts, wide)
	if pw.ClusterQPS <= base.ClusterQPS {
		t.Errorf("more nodes should raise capacity: %v vs %v", pw.ClusterQPS, base.ClusterQPS)
	}
}

func TestAchievedQPSClipsAtSaturation(t *testing.T) {
	p, _ := Predict(testCosts, refSpec())
	if got := p.AchievedQPS(10); got != 10 {
		t.Errorf("under capacity: achieved %v, want the offered 10", got)
	}
	if got := p.AchievedQPS(1e9); got != p.ClusterQPS {
		t.Errorf("over capacity: achieved %v, want saturation %v", got, p.ClusterQPS)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Nodes = 0 },
		func(s *Spec) { s.CoresPerNode = 0 },
		func(s *Spec) { s.Elements = 0 },
		func(s *Spec) { s.PredictPct = 50 }, // mix no longer sums to 100
		func(s *Spec) { s.HitRate = 1.5 },
		func(s *Spec) { s.FitCells = 0 },           // with FitPct > 0
		func(s *Spec) { s.Compressor = "unknown" }, // with FitPct > 0
	}
	for i, mutate := range bad {
		s := refSpec()
		mutate(&s)
		if _, err := Predict(testCosts, s); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	ok := refSpec()
	ok.FitPct, ok.InvalidatePct, ok.PredictPct = 0, 0, 100
	ok.FitCells, ok.Compressor = 0, "unknown" // irrelevant without fit traffic
	if _, err := Predict(testCosts, ok); err != nil {
		t.Errorf("predict-only spec rejected: %v", err)
	}
}

func TestCostsFromBaseline(t *testing.T) {
	c, err := CostsFromBaseline("../../BENCH_kernels.json")
	if err != nil {
		t.Fatal(err)
	}
	if c.SynthNs <= 0 || c.SummaryNs <= 0 || c.MetricsNs <= 0 {
		t.Errorf("non-positive kernel cost: %+v", c)
	}
	for _, id := range []string{"sz3", "zfp", "szx"} {
		if c.CompressNs[id] <= 0 {
			t.Errorf("missing compress cost for %s", id)
		}
	}
	// synthesis dominates the summary at the same element count — if this
	// inverts, the committed baseline rows were swapped
	if c.SynthNs < c.SummaryNs {
		t.Errorf("synth %v < summary %v: baseline rows look swapped", c.SynthNs, c.SummaryNs)
	}
}

func TestCostsFromBaselineMissingRow(t *testing.T) {
	if _, err := CostsFromBaseline("testdata/nonexistent.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestConformance(t *testing.T) {
	if err := Conformance("qps", 100, 110, 0.25); err != nil {
		t.Errorf("10%% error rejected at 25%% band: %v", err)
	}
	if err := Conformance("qps", 100, 150, 0.25); err == nil {
		t.Error("50% error accepted at 25% band")
	}
	if err := Conformance("qps", 100, 110, 0); err == nil {
		t.Error("zero band accepted")
	}
}
