// Package capacity is the analytical throughput model over the kernel
// microbenchmarks: it composes the per-kernel costs recorded in
// BENCH_kernels.json into a predicted per-request CPU cost, per-node
// saturation QPS, and cluster capacity for a declared workload mix. The
// scenario harness (internal/scenario) runs the same workload against a
// real multi-process deployment and asserts the measured throughput is
// within the scenario's declared error band of this model's prediction —
// the conformance check that keeps the model honest and catches serving
// stack regressions the kernel gate can't see (a kernel can stay fast
// while the request path around it gets slow).
package capacity

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/gate"
)

// RefElements is the grid size the kernel benchmarks in
// bench_kernels_test.go measure at (hurricane.DefaultDims = 32×64×64).
// Kernel ns/op scale by element count when a workload uses another grid.
const RefElements = 32 * 64 * 64

// Costs are the per-kernel serial costs (ns per operation at RefElements
// elements) the model composes. They come from BENCH_kernels.json via
// CostsFromBaseline.
type Costs struct {
	// SynthNs is one hurricane field synthesis (the server-side cost of
	// materializing a DataRef on a predict miss or a fit cell).
	SynthNs float64
	// SummaryNs is one fused single-pass summary sweep.
	SummaryNs float64
	// MetricsNs is the stat+entropy+quantized-entropy metric chain on a
	// buffer whose summary is already computed.
	MetricsNs float64
	// CompressNs maps compressor id → one serial compression (the
	// ground-truth measurement a fit cell performs).
	CompressNs map[string]float64
	// BatchItemNs is the warm per-prediction cost on the batch endpoint
	// (cell-cache hit: key build, LRU touch, row copy). Zero when the
	// baseline predates BenchmarkServePredictBatch; Predict then rejects
	// specs with batch traffic instead of pricing it at zero.
	BatchItemNs float64
}

// benchmarkNames maps the Costs fields to the benchmark rows they are
// read from.
const (
	benchSynth   = "BenchmarkKernelHurricaneSynth"
	benchSummary = "BenchmarkKernelFusedSummary"
	benchMetrics = "BenchmarkKernelMetricsChain"
	benchBatch   = "BenchmarkServePredictBatch"
	// benchBatchItems is the batch size BenchmarkServePredictBatch times
	// one op over; its ns/op divides by this to price one warm item.
	benchBatchItems = 16
)

var compressorBenchmarks = map[string]string{
	"sz3": "BenchmarkKernelSZ3Compress/serial",
	"zfp": "BenchmarkKernelZFPCompress/serial",
	"szx": "BenchmarkKernelSZXCompress/serial",
}

// baselineDoc is the slice of the BENCH_kernels.json schema the model
// reads; the file is owned by cmd/benchgate.
type baselineDoc struct {
	Benchmarks map[string]struct {
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// CostsFromBaseline loads the kernel costs from a committed
// BENCH_kernels.json. Missing rows are errors: a prediction built on a
// silently-zero kernel cost would conform to nothing.
func CostsFromBaseline(path string) (*Costs, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc baselineDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("capacity: %s: %w", path, err)
	}
	get := func(name string) (float64, error) {
		m, ok := doc.Benchmarks[name]
		if !ok || m.NsPerOp <= 0 {
			return 0, fmt.Errorf("capacity: %s has no usable %q row", path, name)
		}
		return m.NsPerOp, nil
	}
	c := &Costs{CompressNs: map[string]float64{}}
	if c.SynthNs, err = get(benchSynth); err != nil {
		return nil, err
	}
	if c.SummaryNs, err = get(benchSummary); err != nil {
		return nil, err
	}
	if c.MetricsNs, err = get(benchMetrics); err != nil {
		return nil, err
	}
	for id, row := range compressorBenchmarks {
		ns, err := get(row)
		if err != nil {
			return nil, err
		}
		c.CompressNs[id] = ns
	}
	// optional: only batch-bearing specs need it, checked at Predict time
	if m, ok := doc.Benchmarks[benchBatch]; ok && m.NsPerOp > 0 {
		c.BatchItemNs = m.NsPerOp / benchBatchItems
	}
	return c, nil
}

// Spec declares the workload and deployment the model predicts for. All
// fields are scenario inputs — nothing here is measured.
type Spec struct {
	// Nodes is the node count the workload actually spreads across — NOT
	// necessarily the replica count behind the router. The router pins
	// each partition's predicts to one warm replica and sends its fits to
	// the ring owner, so a single-(scheme, compressor) workload has an
	// effective node count of 1 regardless of cluster size; multi-
	// partition workloads scale toward the replica count.
	Nodes int `json:"nodes"`
	// CoresPerNode is the CPU budget each node may saturate.
	CoresPerNode float64 `json:"cores_per_node"`
	// Elements is the per-request grid size (product of the scenario's
	// data dims).
	Elements int64 `json:"elements"`
	// PredictPct, FitPct, InvalidatePct is the traffic mix in percent;
	// they must sum to 100.
	PredictPct    float64 `json:"predict_pct"`
	FitPct        float64 `json:"fit_pct"`
	InvalidatePct float64 `json:"invalidate_pct"`
	// HitRate is the expected steady-state predict cache hit fraction in
	// [0, 1] (warmed corpus minus invalidation churn).
	HitRate float64 `json:"hit_rate"`
	// BatchPct is the share of predict requests issued against the batch
	// endpoint, in percent of predict traffic (not of the whole mix).
	BatchPct float64 `json:"batch_pct"`
	// MeanBatch is the mean predictions one batched request carries.
	MeanBatch float64 `json:"mean_batch"`
	// FitCells is the training cells one fit job executes (fields ×
	// steps × bounds).
	FitCells int `json:"fit_cells"`
	// Compressor keys into Costs.CompressNs for the fit ground-truth
	// cost.
	Compressor string `json:"compressor"`
	// OverheadUS is the declared fixed per-request overhead in
	// microseconds — HTTP, JSON, routing hop, bookkeeping — everything
	// the kernel benchmarks don't see.
	OverheadUS float64 `json:"overhead_us"`
}

// Validate rejects specs the model would divide by zero on or silently
// mispredict.
func (s Spec) Validate() error {
	if s.Nodes < 1 {
		return fmt.Errorf("capacity: nodes %d < 1", s.Nodes)
	}
	if s.CoresPerNode <= 0 {
		return fmt.Errorf("capacity: cores_per_node %v <= 0", s.CoresPerNode)
	}
	if s.Elements <= 0 {
		return fmt.Errorf("capacity: elements %d <= 0", s.Elements)
	}
	if sum := s.PredictPct + s.FitPct + s.InvalidatePct; sum < 99.999 || sum > 100.001 {
		return fmt.Errorf("capacity: traffic mix sums to %v, want 100", sum)
	}
	if s.PredictPct < 0 || s.FitPct < 0 || s.InvalidatePct < 0 {
		return fmt.Errorf("capacity: negative traffic percentage")
	}
	if s.HitRate < 0 || s.HitRate > 1 {
		return fmt.Errorf("capacity: hit_rate %v outside [0, 1]", s.HitRate)
	}
	if s.FitPct > 0 && s.FitCells < 1 {
		return fmt.Errorf("capacity: fit traffic with fit_cells %d < 1", s.FitCells)
	}
	if s.BatchPct < 0 || s.BatchPct > 100 {
		return fmt.Errorf("capacity: batch_pct %v outside [0, 100]", s.BatchPct)
	}
	if s.BatchPct > 0 && s.MeanBatch < 1 {
		return fmt.Errorf("capacity: batch traffic with mean_batch %v < 1", s.MeanBatch)
	}
	return nil
}

// Prediction is the model output, embedded verbatim into
// BENCH_system.json so a committed system baseline records what the
// model claimed alongside what the run measured.
type Prediction struct {
	// Per-operation CPU costs in milliseconds.
	PredictMissMS float64 `json:"predict_miss_ms"`
	PredictHitMS  float64 `json:"predict_hit_ms"`
	// PredictBatchMS is one batched predict request's cost (overhead plus
	// MeanBatch items at the hit/miss mix); zero when the spec has no
	// batch traffic.
	PredictBatchMS float64 `json:"predict_batch_ms,omitempty"`
	FitJobMS       float64 `json:"fit_job_ms"`
	// MeanRequestMS is the mix-weighted mean CPU cost of one arriving
	// request (fit jobs are async but still burn the node's CPU).
	MeanRequestMS float64 `json:"mean_request_ms"`
	// NodeQPS and ClusterQPS are the CPU-saturation throughput bounds.
	NodeQPS    float64 `json:"node_qps"`
	ClusterQPS float64 `json:"cluster_qps"`
}

// AchievedQPS predicts the throughput of an open-loop run offering
// target QPS: the offered rate, clipped at cluster saturation.
func (p *Prediction) AchievedQPS(target float64) float64 {
	if target < p.ClusterQPS {
		return target
	}
	return p.ClusterQPS
}

// Predict composes kernel costs into the workload's throughput bound.
//
// The model: a predict miss synthesizes the field, runs the fused
// summary, then the metric chain (all scaling with element count); a
// predict hit pays only the fixed overhead; a fit job repeats
// synth+summary+metrics plus one serial compression per training cell.
// A batched predict request pays the fixed overhead once and then
// MeanBatch per-item costs — a warm item is the measured batch hot-path
// cost (BenchmarkServePredictBatch), a cold item is one cell compute —
// which is the amortization the ≥10x batch-QPS claim rests on. Per-node
// saturation is cores / mean-per-request CPU; the router spreads load
// evenly so the cluster scales linearly in nodes.
func Predict(c *Costs, s Spec) (*Prediction, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	scale := float64(s.Elements) / float64(RefElements)
	overheadNs := s.OverheadUS * 1e3
	cellNs := (c.SynthNs + c.SummaryNs + c.MetricsNs) * scale

	missNs := cellNs + overheadNs
	hitNs := overheadNs
	compNs, ok := c.CompressNs[s.Compressor]
	if s.FitPct > 0 && !ok {
		return nil, fmt.Errorf("capacity: no compress cost for %q", s.Compressor)
	}
	fitNs := float64(s.FitCells)*(cellNs+compNs*scale) + overheadNs
	invalNs := overheadNs

	singleNs := s.HitRate*hitNs + (1-s.HitRate)*missNs
	batchNs := 0.0
	if s.BatchPct > 0 {
		if c.BatchItemNs <= 0 {
			return nil, fmt.Errorf("capacity: batch traffic but baseline has no usable %q row", benchBatch)
		}
		batchNs = overheadNs + s.MeanBatch*(s.HitRate*c.BatchItemNs+(1-s.HitRate)*cellNs)
	}
	predictNs := ((100-s.BatchPct)*singleNs + s.BatchPct*batchNs) / 100
	meanNs := (s.PredictPct*predictNs + s.FitPct*fitNs + s.InvalidatePct*invalNs) / 100

	p := &Prediction{
		PredictMissMS:  missNs / 1e6,
		PredictHitMS:   hitNs / 1e6,
		PredictBatchMS: batchNs / 1e6,
		FitJobMS:       fitNs / 1e6,
		MeanRequestMS:  meanNs / 1e6,
	}
	p.NodeQPS = s.CoresPerNode * 1e9 / meanNs
	p.ClusterQPS = p.NodeQPS * float64(s.Nodes)
	return p, nil
}

// Conformance asserts a measured value is within band (relative error)
// of the model's prediction, e.g. Conformance("qps", 120, 100, 0.25).
func Conformance(metric string, predicted, measured, band float64) error {
	if band <= 0 {
		return fmt.Errorf("capacity: conformance band %v <= 0", band)
	}
	if !gate.Within(predicted, measured, band) {
		return fmt.Errorf("capacity: %s measured %.3f outside ±%.0f%% of predicted %.3f",
			metric, measured, band*100, predicted)
	}
	return nil
}
