package faultinject

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	d := p.Fire(OpTask, 0, "x")
	if d.Err != nil || d.Delay != 0 {
		t.Errorf("nil plan fired: %+v", d)
	}
	if p.Log() != nil || p.Rules() != nil {
		t.Error("nil plan has state")
	}
	p.Reset() // must not panic
}

func TestAtAndCount(t *testing.T) {
	p := New(1, Rule{Op: OpTask, Kind: KindError, Worker: -1, At: 3, Count: 2})
	var fired []int
	for i := 1; i <= 6; i++ {
		if d := p.Fire(OpTask, 0, "t"); d.Err != nil {
			fired = append(fired, i)
			if !errors.Is(d.Err, ErrInjected) {
				t.Errorf("err %v does not wrap ErrInjected", d.Err)
			}
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Errorf("fired on events %v, want [3 4]", fired)
	}
}

func TestWorkerAndKeyMatch(t *testing.T) {
	p := New(1,
		Rule{Op: OpTask, Kind: KindDelay, Delay: 5 * time.Millisecond, Worker: 2},
		Rule{Op: OpCall, Kind: KindReset, Worker: -1, Key: "host-b"},
	)
	if d := p.Fire(OpTask, 1, "t"); d.Delay != 0 {
		t.Error("worker 1 should not straggle")
	}
	if d := p.Fire(OpTask, 2, "t"); d.Delay != 5*time.Millisecond {
		t.Errorf("worker 2 delay = %v", d.Delay)
	}
	if d := p.Fire(OpCall, 0, "host-a:1"); d.Err != nil {
		t.Error("host-a should be healthy")
	}
	d := p.Fire(OpCall, 0, "host-b:1")
	if !errors.Is(d.Err, ErrReset) {
		t.Errorf("host-b err = %v, want reset", d.Err)
	}
}

func TestRateIsDeterministic(t *testing.T) {
	run := func() []int {
		p := New(42, Rule{Op: OpTask, Kind: KindError, Worker: -1, Rate: 0.3})
		var fired []int
		for i := 0; i < 100; i++ {
			if d := p.Fire(OpTask, 0, fmt.Sprint(i)); d.Err != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 100 {
		t.Fatalf("rate 0.3 fired %d/100 times", len(a))
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed, different sequences:\n%v\n%v", a, b)
	}
}

func TestResetReplaysIdentically(t *testing.T) {
	p := New(7,
		Rule{Op: OpTask, Kind: KindError, Worker: -1, Rate: 0.5},
		Rule{Op: OpTask, Kind: KindDelay, Delay: time.Millisecond, Worker: -1, At: 4, Count: 1},
	)
	drive := func() []Event {
		for i := 0; i < 20; i++ {
			p.Fire(OpTask, i%3, fmt.Sprintf("task%d", i))
		}
		return p.Log()
	}
	first := drive()
	p.Reset()
	second := drive()
	if len(first) == 0 {
		t.Fatal("no events fired")
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Errorf("replay diverged:\n%v\n%v", first, second)
	}
}

func TestCrashBeatsDelay(t *testing.T) {
	p := New(1,
		Rule{Op: OpPutBefore, Kind: KindDelay, Delay: time.Millisecond, Worker: -1},
		Rule{Op: OpPutBefore, Kind: KindCrash, Worker: -1},
	)
	d := p.Fire(OpPutBefore, -1, "k")
	if !errors.Is(d.Err, ErrCrash) {
		t.Errorf("err = %v, want crash", d.Err)
	}
	if d.Delay != time.Millisecond {
		t.Errorf("delay rules should still accumulate: %v", d.Delay)
	}
}

func TestParse(t *testing.T) {
	p, err := Parse(9, `
		# a comment
		task error at=10 count=2
		task delay=200ms worker=2
		call reset endpoint=127.0.0.1:7001; dial error rate=0.5
		put-before crash at=1 count=1
	`)
	if err != nil {
		t.Fatal(err)
	}
	rules := p.Rules()
	if len(rules) != 5 {
		t.Fatalf("rules = %d, want 5", len(rules))
	}
	if rules[0].At != 10 || rules[0].Count != 2 || rules[0].Kind != KindError {
		t.Errorf("rule 0 = %+v", rules[0])
	}
	if rules[1].Worker != 2 || rules[1].Delay != 200*time.Millisecond {
		t.Errorf("rule 1 = %+v", rules[1])
	}
	if rules[2].Key != "127.0.0.1:7001" || rules[2].Kind != KindReset {
		t.Errorf("rule 2 = %+v", rules[2])
	}
	if rules[3].Op != OpDial || rules[3].Rate != 0.5 {
		t.Errorf("rule 3 = %+v", rules[3])
	}
	if rules[4].Op != OpPutBefore || rules[4].Kind != KindCrash {
		t.Errorf("rule 4 = %+v", rules[4])
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"task",                  // missing kind
		"nope error",            // unknown op
		"task explode",          // unknown kind
		"task delay",            // delay without duration
		"task delay=xyz",        // bad duration
		"task error at=ten",     // bad int
		"task error foo=1",      // unknown matcher
		"task error=1s",         // value on valueless kind
		"task error noequals==", // stray =
	} {
		if _, err := Parse(1, bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
