// Package faultinject is the deterministic fault-injection framework of
// predict-bench's resilience layer. A Plan scripts failures — worker
// death, straggler delays, RPC connection resets, crashes around
// checkpoint writes — against the operation stream of a run, and replays
// them exactly: matching is by per-rule event counters and a seeded
// xorshift generator, never by wall clock, so the same plan over the
// same schedule produces the same failure sequence.
//
// Subsystems call Fire at their fault points (the queue before each task
// attempt, the RPC pool around dials and calls, the store around WAL and
// snapshot writes) and obey the returned Decision. A nil *Plan is inert,
// so production paths pay one nil check.
//
// Plans are built programmatically (Plan{Rules: ...}) or parsed from the
// compact text format of the predict-bench -fault-plan flag:
//
//	task error at=10 count=2          # 10th and 11th task attempts fail
//	task delay=200ms worker=2         # worker 2 straggles on every task
//	call reset key=127.0.0.1:7001     # every call to that endpoint resets
//	task error rate=0.2               # random faults, seeded
//	put-before crash at=12            # crash before the 12th WAL append
//
// Lines are `<op> <kind> [k=v ...]`; `#` starts a comment; rules are
// separated by newlines or semicolons.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Op names a fault point in the system.
type Op string

// Fault points wired into the queue, RPC pool, and store.
const (
	OpTask          Op = "task"           // queue: before a task attempt runs
	OpDial          Op = "dial"           // pool: before dialing an endpoint
	OpCall          Op = "call"           // pool: before an RPC call
	OpPutBefore     Op = "put-before"     // store: before the WAL append
	OpPutAfter      Op = "put-after"      // store: after the WAL append, before the ack
	OpCompactBefore Op = "compact-before" // store: snapshot written, before the rename
	OpCompactAfter  Op = "compact-after"  // store: renamed, before the WAL truncate
)

// Fault points of the filesystem seam (errfs over vfs.FS); key is the
// file path ("old -> new" for renames).
const (
	OpFSOpen     Op = "fs-open"     // OpenFile / ReadFile
	OpFSWrite    Op = "fs-write"    // File.Write
	OpFSSync     Op = "fs-sync"     // File.Sync / FS.SyncDir
	OpFSRename   Op = "fs-rename"   // FS.Rename
	OpFSRemove   Op = "fs-remove"   // FS.Remove
	OpFSTruncate Op = "fs-truncate" // FS.Truncate / File.Truncate
)

// Fault points of the network seam (RoundTripper) and the cluster
// replication path; key is host+path for http, "stream/seq" for the
// replication points.
const (
	OpHTTP      Op = "http"       // RoundTripper: before an HTTP request leaves
	OpReplShip  Op = "repl-ship"  // cluster: owner serving one log frame to a follower
	OpReplApply Op = "repl-apply" // cluster: follower about to apply one shipped frame
)

// Fault kinds.
const (
	KindError     = "error"       // the operation fails with ErrInjected
	KindDelay     = "delay"       // the operation is delayed (straggler)
	KindReset     = "reset"       // a connection-level failure (pool drops the client)
	KindCrash     = "crash"       // the process "dies" here (store leaves partial state)
	KindShort     = "short"       // fs-write only: a torn prefix lands, then io.ErrShortWrite
	KindENOSPC    = "enospc"      // the device is "full": partial write + ENOSPC
	KindPartition = "partition"   // http only: the peer is unreachable (connection refused)
	KindDrop      = "drop"        // http only: the request is blackholed until the caller's deadline
	KindSlow      = "slow-stream" // http only: the response body trickles (per-chunk delay)
)

// ErrInjected is the base error of every injected failure; match it with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrCrash marks a crash-kind injection; it wraps ErrInjected.
var ErrCrash = fmt.Errorf("%w (crash)", ErrInjected)

// ErrReset marks a reset-kind injection; it wraps ErrInjected.
var ErrReset = fmt.Errorf("%w (connection reset)", ErrInjected)

// ErrShortWrite marks a short-kind injection: only a prefix of the
// buffer landed. It wraps both ErrInjected and io.ErrShortWrite.
var ErrShortWrite = fmt.Errorf("%w (%w)", ErrInjected, io.ErrShortWrite)

// ErrNoSpace marks an enospc-kind injection; it wraps both ErrInjected
// and syscall.ENOSPC so callers can match either.
var ErrNoSpace = fmt.Errorf("%w (%w)", ErrInjected, syscall.ENOSPC)

// ErrPartition marks a partition-kind injection: the peer is
// unreachable at the connection level. It wraps both ErrInjected and
// syscall.ECONNREFUSED so network-error matching treats it like a real
// refused dial.
var ErrPartition = fmt.Errorf("%w (%w)", ErrInjected, syscall.ECONNREFUSED)

// ErrDropped marks a drop-kind injection: the request was blackholed
// and the caller's deadline is what surfaced it.
var ErrDropped = fmt.Errorf("%w (request dropped)", ErrInjected)

// Rule scripts one fault. Zero-valued matchers match everything.
type Rule struct {
	// Op selects the fault point.
	Op Op
	// Kind is one of KindError, KindDelay, KindReset, KindCrash.
	Kind string
	// Delay is the straggler duration for KindDelay.
	Delay time.Duration
	// Worker matches a specific queue worker; -1 (or 0 via AnyWorker
	// from the parser) matches all. Use -1 for "any".
	Worker int
	// Key substring-matches the operation key (task ID, store key, or
	// endpoint address); empty matches all.
	Key string
	// At fires starting from the Nth matching event (1-based). 0 means
	// from the first.
	At int
	// Count caps how many times the rule fires; 0 means unlimited.
	Count int
	// Rate fires the rule with this probability per matching event
	// (seeded, deterministic). 0 means always.
	Rate float64
}

// Decision is what a fault point must do.
type Decision struct {
	// Err, when non-nil, is the injected failure (wraps ErrInjected).
	Err error
	// Delay, when positive, is slept before proceeding.
	Delay time.Duration
	// Slow, when positive, is the per-chunk delay a slow-stream rule
	// imposes on the response body (http fault points only).
	Slow time.Duration
}

// Event records one fired fault, for replay assertions.
type Event struct {
	Seq    int
	Op     Op
	Worker int
	Key    string
	Kind   string
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %s %s w%d %s", e.Seq, e.Op, e.Kind, e.Worker, e.Key)
}

type ruleState struct {
	rule    Rule
	matched int // matching events seen
	fired   int // times the rule fired
}

// Plan is a live fault-injection plan; safe for concurrent use. The zero
// Plan (and a nil *Plan) injects nothing.
type Plan struct {
	mu        sync.Mutex
	seed      uint64
	rng       uint64
	rules     []*ruleState
	log       []Event
	crashHook func()
}

// SetCrashHook installs a callback invoked (outside the plan lock)
// whenever a crash-kind rule fires. The multi-process cluster harness
// uses it to turn an injected crash into real process death
// (os.Exit) at an exact seeded operation — kill -9 with deterministic
// timing. In-process harnesses leave it nil and obey Decision.Err.
func (p *Plan) SetCrashHook(hook func()) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.crashHook = hook
	p.mu.Unlock()
}

// New builds a plan from rules with the given seed for Rate draws.
func New(seed uint64, rules ...Rule) *Plan {
	p := &Plan{seed: seed, rng: seed | 1}
	for _, r := range rules {
		rr := r
		p.rules = append(p.rules, &ruleState{rule: rr})
	}
	return p
}

// xorshift64 in place; deterministic given the seed and call order.
func (p *Plan) next() uint64 {
	p.rng ^= p.rng << 13
	p.rng ^= p.rng >> 7
	p.rng ^= p.rng << 17
	return p.rng
}

// Fire evaluates the plan at a fault point. worker is the queue worker
// index (-1 when not applicable); key is the task ID, store key, or
// endpoint address. The strongest matching rule wins: crash > reset >
// error > delay; delays from delay-rules accumulate onto any decision.
func (p *Plan) Fire(op Op, worker int, key string) Decision {
	if p == nil {
		return Decision{}
	}
	p.mu.Lock()
	var d Decision
	kindRank := map[string]int{
		KindDelay: 1, KindSlow: 1, KindError: 2, KindShort: 3, KindENOSPC: 4,
		KindDrop: 5, KindPartition: 6, KindReset: 7, KindCrash: 8,
	}
	best := 0
	for _, rs := range p.rules {
		r := &rs.rule
		if r.Op != op {
			continue
		}
		if r.Worker >= 0 && worker >= 0 && r.Worker != worker {
			continue
		}
		if r.Key != "" && !strings.Contains(key, r.Key) {
			continue
		}
		rs.matched++
		if r.At > 0 && rs.matched < r.At {
			continue
		}
		if r.Count > 0 && rs.fired >= r.Count {
			continue
		}
		if r.Rate > 0 && float64(p.next()%1e6)/1e6 >= r.Rate {
			continue
		}
		rs.fired++
		p.log = append(p.log, Event{
			Seq: len(p.log) + 1, Op: op, Worker: worker, Key: key, Kind: r.Kind,
		})
		switch r.Kind {
		case KindDelay:
			d.Delay += r.Delay
		case KindSlow:
			d.Slow += r.Delay
		default:
			if kindRank[r.Kind] > best {
				best = kindRank[r.Kind]
				switch r.Kind {
				case KindCrash:
					d.Err = fmt.Errorf("%s %q: %w", op, key, ErrCrash)
				case KindReset:
					d.Err = fmt.Errorf("%s %q: %w", op, key, ErrReset)
				case KindShort:
					d.Err = fmt.Errorf("%s %q: %w", op, key, ErrShortWrite)
				case KindENOSPC:
					d.Err = fmt.Errorf("%s %q: %w", op, key, ErrNoSpace)
				case KindPartition:
					d.Err = fmt.Errorf("%s %q: %w", op, key, ErrPartition)
				case KindDrop:
					d.Err = fmt.Errorf("%s %q: %w", op, key, ErrDropped)
				default:
					d.Err = fmt.Errorf("%s %q: %w", op, key, ErrInjected)
				}
			}
		}
	}
	hook := p.crashHook
	p.mu.Unlock()
	if hook != nil && d.Err != nil && errors.Is(d.Err, ErrCrash) {
		hook()
	}
	return d
}

// Log returns a copy of the fired-event sequence.
func (p *Plan) Log() []Event {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.log...)
}

// Reset rewinds all counters, the RNG, and the event log, so the same
// plan can replay a second run identically.
func (p *Plan) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rng = p.seed | 1
	p.log = nil
	for _, rs := range p.rules {
		rs.matched, rs.fired = 0, 0
	}
}

// Rules returns a copy of the plan's rules (for re-building a fresh plan
// with the same script, e.g. across a simulated restart).
func (p *Plan) Rules() []Rule {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Rule, len(p.rules))
	for i, rs := range p.rules {
		out[i] = rs.rule
	}
	return out
}

// Seed returns the plan's RNG seed.
func (p *Plan) Seed() uint64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Parse builds a Plan from the text format (see the package comment).
func Parse(seed uint64, text string) (*Plan, error) {
	var rules []Rule
	for _, line := range strings.FieldsFunc(text, func(r rune) bool { return r == '\n' || r == ';' }) {
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("faultinject: rule %q needs `<op> <kind>`", line)
		}
		r := Rule{Op: Op(fields[0]), Worker: -1}
		switch r.Op {
		case OpTask, OpDial, OpCall, OpPutBefore, OpPutAfter, OpCompactBefore, OpCompactAfter,
			OpFSOpen, OpFSWrite, OpFSSync, OpFSRename, OpFSRemove, OpFSTruncate,
			OpHTTP, OpReplShip, OpReplApply:
		default:
			return nil, fmt.Errorf("faultinject: unknown op %q", fields[0])
		}
		kind, dur, hasDur := strings.Cut(fields[1], "=")
		switch kind {
		case KindError, KindReset, KindCrash, KindShort, KindENOSPC, KindPartition, KindDrop:
			if hasDur {
				return nil, fmt.Errorf("faultinject: kind %q takes no value", kind)
			}
		case KindDelay, KindSlow:
			if !hasDur {
				return nil, fmt.Errorf("faultinject: %s needs a duration, e.g. %s=200ms", kind, kind)
			}
			d, err := time.ParseDuration(dur)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad %s %q: %w", kind, dur, err)
			}
			r.Delay = d
		default:
			return nil, fmt.Errorf("faultinject: unknown kind %q (want error|delay|reset|crash|short|enospc|partition|drop|slow-stream)", kind)
		}
		r.Kind = kind
		for _, kv := range fields[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: bad matcher %q (want k=v)", kv)
			}
			var err error
			switch k {
			case "at":
				r.At, err = strconv.Atoi(v)
			case "count":
				r.Count, err = strconv.Atoi(v)
			case "worker":
				r.Worker, err = strconv.Atoi(v)
			case "rate":
				r.Rate, err = strconv.ParseFloat(v, 64)
			case "key", "endpoint":
				r.Key = v
			default:
				err = fmt.Errorf("unknown matcher %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: rule %q: %v", line, err)
			}
		}
		rules = append(rules, r)
	}
	return New(seed, rules...), nil
}
