package faultinject

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func writeAll(t *testing.T, fs *ErrFS, name string, data []byte) (int, error) {
	t.Helper()
	f, err := fs.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	return f.Write(data)
}

func TestErrFSShortWriteLandsTornPrefix(t *testing.T) {
	dir := t.TempDir()
	fs := NewErrFS(dir, New(1, Rule{Op: OpFSWrite, Kind: KindShort, Worker: -1, At: 2, Count: 1}))
	name := filepath.Join(dir, "wal.log")

	if _, err := writeAll(t, fs, name, []byte("aaaa")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	n, err := writeAll(t, fs, name, []byte("bbbb"))
	if !errors.Is(err, ErrShortWrite) || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("second write = %d, %v; want short write", n, err)
	}
	if n != 2 {
		t.Errorf("short write landed %d bytes, want 2", n)
	}
	raw, _ := os.ReadFile(name)
	if string(raw) != "aaaabb" {
		t.Errorf("file = %q, want torn prefix appended", raw)
	}
	// the "process" is still alive: the next write succeeds
	if _, err := writeAll(t, fs, name, []byte("cc")); err != nil {
		t.Errorf("write after short write: %v", err)
	}
}

func TestErrFSENOSPCMatchesSyscall(t *testing.T) {
	dir := t.TempDir()
	fs := NewErrFS(dir, New(1, Rule{Op: OpFSWrite, Kind: KindENOSPC, Worker: -1}))
	_, err := writeAll(t, fs, filepath.Join(dir, "f"), []byte("data"))
	if !errors.Is(err, ErrNoSpace) || !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v; want ENOSPC wrapping ErrInjected", err)
	}
}

func TestErrFSSyncFailure(t *testing.T) {
	dir := t.TempDir()
	fs := NewErrFS(dir, New(1, Rule{Op: OpFSSync, Kind: KindError, Worker: -1, Key: "wal"}))
	f, err := fs.OpenFile(filepath.Join(dir, "wal.log"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync = %v, want injected error", err)
	}
}

// TestErrFSCrashFreezesState crashes on the third write and checks the
// frozen copy holds exactly the pre-crash state plus the torn prefix,
// while the live fs refuses everything afterwards.
func TestErrFSCrashFreezesState(t *testing.T) {
	dir := t.TempDir()
	fs := NewErrFS(dir, New(1, Rule{Op: OpFSWrite, Kind: KindCrash, Worker: -1, At: 3}))
	name := filepath.Join(dir, "wal.log")

	writeAll(t, fs, name, []byte("1111"))
	writeAll(t, fs, name, []byte("2222"))
	n, err := writeAll(t, fs, name, []byte("3333"))
	if !errors.Is(err, ErrCrash) || n != 2 {
		t.Fatalf("crash write = %d, %v", n, err)
	}
	if !fs.Crashed() {
		t.Fatal("fs should be dead after crash")
	}
	frozen := fs.FrozenDir()
	if frozen == "" {
		t.Fatal("no frozen dir after crash")
	}
	raw, err := os.ReadFile(filepath.Join(frozen, "wal.log"))
	if err != nil || string(raw) != "1111222233" {
		t.Fatalf("frozen wal = %q, %v; want pre-crash state + torn prefix", raw, err)
	}

	// every post-crash operation fails
	if _, err := fs.ReadFile(name); !errors.Is(err, ErrCrash) {
		t.Errorf("ReadFile after crash = %v", err)
	}
	if err := fs.Rename(name, name+"x"); !errors.Is(err, ErrCrash) {
		t.Errorf("Rename after crash = %v", err)
	}
	if _, err := fs.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644); !errors.Is(err, ErrCrash) {
		t.Errorf("open after crash = %v", err)
	}
	// the live file did not grow past the freeze point
	live, _ := os.ReadFile(name)
	if string(live) != "1111222233" {
		t.Errorf("live wal mutated after crash: %q", live)
	}
}

// TestErrFSManualFreeze covers the harness path for crashes fired above
// the seam: Freeze() snapshots the current state and kills the fs.
func TestErrFSManualFreeze(t *testing.T) {
	dir := t.TempDir()
	fs := NewErrFS(dir, nil) // nil plan: no injected faults
	name := filepath.Join(dir, "snapshot.db")
	if _, err := writeAll(t, fs, name, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	frozen, err := fs.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(frozen, "snapshot.db"))
	if err != nil || string(raw) != "snap" {
		t.Fatalf("frozen copy = %q, %v", raw, err)
	}
	if again, _ := fs.Freeze(); again != frozen {
		t.Errorf("second Freeze = %q, want idempotent %q", again, frozen)
	}
	if _, err := fs.OpenFile(name, os.O_WRONLY, 0o644); !errors.Is(err, ErrCrash) {
		t.Errorf("open after manual freeze = %v", err)
	}
}

// TestErrFSRenameFault tears a compact-style rename: the temp file
// stays, the target is never replaced.
func TestErrFSRenameFault(t *testing.T) {
	dir := t.TempDir()
	fs := NewErrFS(dir, New(1, Rule{Op: OpFSRename, Kind: KindCrash, Worker: -1}))
	tmp := filepath.Join(dir, "snapshot.db.0.tmp")
	writeAll(t, fs, tmp, []byte("new"))
	err := fs.Rename(tmp, filepath.Join(dir, "snapshot.db"))
	if !errors.Is(err, ErrCrash) {
		t.Fatalf("Rename = %v, want crash", err)
	}
	frozen := fs.FrozenDir()
	if _, err := os.Stat(filepath.Join(frozen, "snapshot.db.0.tmp")); err != nil {
		t.Errorf("frozen state should hold the orphaned temp: %v", err)
	}
	if _, err := os.Stat(filepath.Join(frozen, "snapshot.db")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("torn rename must not produce the target: %v", err)
	}
}

func TestParseFSRules(t *testing.T) {
	p, err := Parse(7, "fs-write enospc key=wal.log at=3; fs-sync error\nfs-rename crash count=1; fs-write short rate=0.5")
	if err != nil {
		t.Fatal(err)
	}
	rules := p.Rules()
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rules))
	}
	if rules[0].Op != OpFSWrite || rules[0].Kind != KindENOSPC || rules[0].At != 3 {
		t.Errorf("rule 0 = %+v", rules[0])
	}
	if rules[2].Op != OpFSRename || rules[2].Kind != KindCrash {
		t.Errorf("rule 2 = %+v", rules[2])
	}
	if _, err := Parse(1, "fs-write bogus"); err == nil {
		t.Error("unknown kind should fail to parse")
	}
}
