package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseNetworkOpsAndKinds(t *testing.T) {
	p, err := Parse(7, `
		http partition key=n2/ at=1
		http drop count=2
		repl-ship error at=3
		repl-apply slow-stream=5ms
	`)
	if err != nil {
		t.Fatal(err)
	}
	rules := p.Rules()
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rules))
	}
	if rules[0].Op != OpHTTP || rules[0].Kind != KindPartition {
		t.Errorf("rule 0 = %+v", rules[0])
	}
	if rules[3].Op != OpReplApply || rules[3].Kind != KindSlow || rules[3].Delay != 5*time.Millisecond {
		t.Errorf("rule 3 = %+v", rules[3])
	}
	if _, err := Parse(1, "http slow-stream"); err == nil {
		t.Error("slow-stream without a duration parsed")
	}
	if _, err := Parse(1, "bogus-op error"); err == nil {
		t.Error("unknown op parsed")
	}
}

func TestPartitionLooksLikeConnRefused(t *testing.T) {
	p := New(1, Rule{Op: OpHTTP, Kind: KindPartition, Worker: -1})
	d := p.Fire(OpHTTP, -1, "host/path")
	if !errors.Is(d.Err, ErrPartition) || !errors.Is(d.Err, syscall.ECONNREFUSED) {
		t.Errorf("partition decision = %v", d.Err)
	}
}

func TestRoundTripperPassthrough(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	client := &http.Client{Transport: &RoundTripper{Plan: nil}}
	resp, err := client.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Errorf("body = %q", body)
	}
}

func TestRoundTripperPartitionAndKeyScoping(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	// the rule keys on the path, so /dead is cut but /alive still works
	p := New(1, Rule{Op: OpHTTP, Kind: KindPartition, Worker: -1, Key: "/dead"})
	client := &http.Client{Transport: &RoundTripper{Plan: p}}

	if _, err := client.Get(srv.URL + "/dead"); err == nil || !errors.Is(err, ErrPartition) {
		t.Fatalf("partitioned request = %v, want ErrPartition", err)
	}
	resp, err := client.Get(srv.URL + "/alive")
	if err != nil {
		t.Fatalf("unscoped path also failed: %v", err)
	}
	resp.Body.Close()
}

func TestRoundTripperDropBlocksUntilContextDone(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	p := New(1, Rule{Op: OpHTTP, Kind: KindDrop, Worker: -1})
	client := &http.Client{Transport: &RoundTripper{Plan: p}}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("dropped request returned a response")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("drop returned after %v, want it to hang until the deadline", elapsed)
	}
}

func TestRoundTripperDelayAndSlowBody(t *testing.T) {
	payload := strings.Repeat("x", 3*slowChunk)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer srv.Close()

	p := New(1,
		Rule{Op: OpHTTP, Kind: KindDelay, Delay: 10 * time.Millisecond, Worker: -1, At: 1, Count: 1},
		Rule{Op: OpHTTP, Kind: KindSlow, Delay: 5 * time.Millisecond, Worker: -1, At: 2},
	)
	client := &http.Client{Transport: &RoundTripper{Plan: p}}

	start := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("delayed request returned in %v", elapsed)
	}

	// second request hits the slow-stream rule: 3 chunks * 5ms pause
	start = time.Now()
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(body) != len(payload) {
		t.Fatalf("slow body read = %d bytes, %v", len(body), err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("slow-streamed body arrived in %v, want >= 15ms", elapsed)
	}
}

func TestCrashHookFires(t *testing.T) {
	p := New(1, Rule{Op: OpTask, Kind: KindCrash, Worker: -1})
	fired := false
	p.SetCrashHook(func() { fired = true })
	d := p.Fire(OpTask, 0, "k")
	if !errors.Is(d.Err, ErrCrash) {
		t.Fatalf("decision = %v", d.Err)
	}
	if !fired {
		t.Error("crash hook did not fire")
	}
}
