package faultinject

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/vfs"
)

// ErrFS is a vfs.FS that injects filesystem faults from a Plan into
// every operation touching the guarded root directory: short writes,
// ENOSPC, failed fsyncs, failed renames, and crash points. A crash
// freezes the root's current on-disk state as a copy (FrozenDir) and
// marks the filesystem dead — every later operation fails with
// ErrCrash, exactly as if the process had died at that instant. The
// kill-restart harness then reopens the frozen copy as "the machine
// after reboot".
//
// Fault points fire with the operation's path as the key, so rules can
// target one file: `fs-write enospc key=wal.log`, `fs-sync crash`.
// A crash at fs-write first lands a torn prefix of the buffer (half,
// rounded down) before freezing — the on-disk signature of a process
// killed mid-append, which is what the store's torn-tail recovery must
// absorb. A short/enospc write also lands the torn prefix but leaves
// the "process" alive, so the caller sees the error and must repair.
type ErrFS struct {
	base vfs.FS
	root string
	plan *Plan

	mu     sync.Mutex
	dead   bool
	frozen string
}

// NewErrFS builds an errfs over the real filesystem guarding root.
func NewErrFS(root string, plan *Plan) *ErrFS {
	return &ErrFS{base: vfs.OS, root: root, plan: plan}
}

// Crashed reports whether an injected crash has fired (or Freeze was
// called); once true, every operation fails with ErrCrash.
func (f *ErrFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

// FrozenDir returns the directory holding the crash-point copy of the
// root, or "" before any crash.
func (f *ErrFS) FrozenDir() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frozen
}

// Freeze copies the root's current state into the frozen directory and
// marks the filesystem dead. Crash-kind injections call it implicitly;
// the harness calls it directly when a crash fired above the seam (a
// store-level crash point) so the restart still reopens a snapshot
// taken at the instant of death. Idempotent: a second call returns the
// first frozen dir.
func (f *ErrFS) Freeze() (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.frozen != "" {
		f.dead = true
		return f.frozen, nil
	}
	dst := f.root + ".crash"
	if err := f.base.MkdirAll(dst, 0o755); err != nil {
		return "", fmt.Errorf("errfs: freeze: %w", err)
	}
	names, err := f.base.ReadDir(f.root)
	if err != nil {
		return "", fmt.Errorf("errfs: freeze: %w", err)
	}
	for _, name := range names {
		raw, err := f.base.ReadFile(filepath.Join(f.root, name))
		if err != nil {
			continue // subdirectory or vanished entry: not store state
		}
		out, err := f.base.OpenFile(filepath.Join(dst, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return "", fmt.Errorf("errfs: freeze: %w", err)
		}
		if _, err := out.Write(raw); err != nil {
			out.Close()
			return "", fmt.Errorf("errfs: freeze: %w", err)
		}
		if err := out.Close(); err != nil {
			return "", fmt.Errorf("errfs: freeze: %w", err)
		}
	}
	f.dead = true
	f.frozen = dst
	return dst, nil
}

// errDead is the failure every operation returns after a crash.
func errDead() error { return fmt.Errorf("errfs: filesystem dead after %w", ErrCrash) }

// fire evaluates the plan at an fs fault point, applying delays. On a
// crash decision it freezes the directory first when freezeOnCrash is
// set — Write passes false so the torn prefix lands before the copy is
// taken. Returns the decision error (nil to proceed).
func (f *ErrFS) fire(op Op, key string, freezeOnCrash bool) error {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return errDead()
	}
	f.mu.Unlock()

	d := f.plan.Fire(op, -1, key)
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	if d.Err == nil {
		return nil
	}
	if freezeOnCrash && errors.Is(d.Err, ErrCrash) {
		f.Freeze()
	}
	return fmt.Errorf("errfs: %w", d.Err)
}

// MkdirAll is not a fault point: directory creation happens once at
// Open, before any durability-relevant state exists.
func (f *ErrFS) MkdirAll(path string, perm os.FileMode) error {
	if f.Crashed() {
		return errDead()
	}
	return f.base.MkdirAll(path, perm)
}

func (f *ErrFS) OpenFile(name string, flag int, perm os.FileMode) (vfs.File, error) {
	if err := f.fire(OpFSOpen, name, true); err != nil {
		return nil, err
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &errFile{fs: f, name: name, file: file}, nil
}

func (f *ErrFS) ReadFile(name string) ([]byte, error) {
	if err := f.fire(OpFSOpen, name, true); err != nil {
		return nil, err
	}
	return f.base.ReadFile(name)
}

func (f *ErrFS) ReadDir(dir string) ([]string, error) {
	if f.Crashed() {
		return nil, errDead()
	}
	return f.base.ReadDir(dir)
}

func (f *ErrFS) Rename(oldpath, newpath string) error {
	if err := f.fire(OpFSRename, oldpath+" -> "+newpath, true); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *ErrFS) Remove(name string) error {
	if err := f.fire(OpFSRemove, name, true); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *ErrFS) Truncate(name string, size int64) error {
	if err := f.fire(OpFSTruncate, name, true); err != nil {
		return err
	}
	return f.base.Truncate(name, size)
}

func (f *ErrFS) SyncDir(dir string) error {
	if err := f.fire(OpFSSync, dir, true); err != nil {
		return err
	}
	return f.base.SyncDir(dir)
}

// errFile wraps an open file, firing write/sync/truncate fault points.
type errFile struct {
	fs   *ErrFS
	name string
	file vfs.File
}

func (ef *errFile) Write(p []byte) (int, error) {
	err := ef.fs.fire(OpFSWrite, ef.name, false)
	if err == nil {
		return ef.file.Write(p)
	}
	// torn semantics: short writes, full disks, and crashes all land a
	// prefix of the buffer before failing — the state a recovery scan
	// must be able to absorb
	if errors.Is(err, ErrShortWrite) || errors.Is(err, ErrNoSpace) || errors.Is(err, ErrCrash) {
		n, werr := ef.file.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		if errors.Is(err, ErrCrash) {
			// the copy must contain the torn prefix, so freeze only now
			ef.fs.Freeze()
		}
		return n, err
	}
	return 0, err
}

func (ef *errFile) Sync() error {
	if err := ef.fs.fire(OpFSSync, ef.name, true); err != nil {
		return err
	}
	return ef.file.Sync()
}

func (ef *errFile) Truncate(size int64) error {
	if err := ef.fs.fire(OpFSTruncate, ef.name, true); err != nil {
		return err
	}
	return ef.file.Truncate(size)
}

func (ef *errFile) Seek(offset int64, whence int) (int64, error) {
	if ef.fs.Crashed() {
		return 0, errDead()
	}
	return ef.file.Seek(offset, whence)
}

// Close never fails injection: a dying process's descriptors close
// anyway, and refusing Close would leak handles in tests.
func (ef *errFile) Close() error { return ef.file.Close() }
