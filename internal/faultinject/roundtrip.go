package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// dropCap bounds how long a drop-kind rule blackholes a request whose
// context carries no deadline, so a misconfigured client cannot wedge a
// test forever.
const dropCap = 30 * time.Second

// RoundTripper is the network seam of the fault framework: an
// http.RoundTripper that consults a Plan at OpHTTP before delegating to
// Base. The key presented to the plan is host+path (e.g.
// "127.0.0.1:7001/v1/repl/stream"), so rules can target one peer, one
// endpoint, or both.
//
// Kind semantics at this seam:
//
//	partition    the request fails immediately with ErrPartition
//	reset        the request fails immediately with ErrReset
//	error/crash  the request fails with the usual injected error
//	drop         the request blackholes: blocks until the request
//	             context is done (capped at 30s), then fails with
//	             ErrDropped
//	delay=D      the request is held D before leaving (ctx-abortable)
//	slow-stream=D the response body trickles: each read chunk is capped
//	             at 4 KiB and preceded by a D pause
//
// A nil Plan (or a nil *RoundTripper) is inert passthrough.
type RoundTripper struct {
	// Plan is consulted before every request; nil injects nothing.
	Plan *Plan
	// Base performs the real request; nil means http.DefaultTransport.
	Base http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	base := http.RoundTripper(http.DefaultTransport)
	if t != nil && t.Base != nil {
		base = t.Base
	}
	if t == nil || t.Plan == nil {
		return base.RoundTrip(req)
	}
	key := req.URL.Host + req.URL.Path
	d := t.Plan.Fire(OpHTTP, -1, key)
	if d.Delay > 0 {
		if err := sleepCtx(req.Context(), d.Delay); err != nil {
			return nil, err
		}
	}
	if d.Err != nil {
		if errors.Is(d.Err, ErrDropped) {
			return nil, blackhole(req.Context(), d.Err)
		}
		return nil, fmt.Errorf("faultinject: http %s: %w", key, d.Err)
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.Slow > 0 {
		resp.Body = &slowBody{rc: resp.Body, ctx: req.Context(), pause: d.Slow}
	}
	return resp, nil
}

// blackhole waits for the request context (or the drop cap) and returns
// the injected error wrapped with whatever surfaced it.
func blackhole(ctx context.Context, injected error) error {
	timer := time.NewTimer(dropCap)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", injected, ctx.Err())
	case <-timer.C:
		return fmt.Errorf("%w: drop cap %s elapsed", injected, dropCap)
	}
}

// sleepCtx sleeps d or returns early with the context error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// slowChunk caps how many bytes one slowBody.Read returns, so the
// per-chunk pause is applied many times over a large response.
const slowChunk = 4096

// slowBody trickles an http response body: each Read is preceded by a
// pause and returns at most slowChunk bytes. The pause is abortable by
// the request context, so a client with a deadline still observes it.
type slowBody struct {
	rc    io.ReadCloser
	ctx   context.Context
	pause time.Duration
}

func (s *slowBody) Read(p []byte) (int, error) {
	if err := sleepCtx(s.ctx, s.pause); err != nil {
		return 0, err
	}
	if len(p) > slowChunk {
		p = p[:slowChunk]
	}
	return s.rc.Read(p)
}

func (s *slowBody) Close() error { return s.rc.Close() }
