package hurricane

import (
	"math"
	"testing"

	"repro/internal/stats"
)

var testDims = []int{8, 16, 16}

func TestFieldValidation(t *testing.T) {
	if _, err := Field("CLOUD", -1, testDims); err == nil {
		t.Error("negative step accepted")
	}
	if _, err := Field("CLOUD", Timesteps, testDims); err == nil {
		t.Error("out-of-range step accepted")
	}
	if _, err := Field("NOPE", 0, testDims); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Field("CLOUD", 0, []int{4, 4}); err == nil {
		t.Error("2-D dims accepted")
	}
}

func TestAllFieldsGenerate(t *testing.T) {
	for _, f := range FieldNames {
		d, err := Field(f, 10, testDims)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if d.Len() != 8*16*16 {
			t.Errorf("%s: wrong size %d", f, d.Len())
		}
		for i := 0; i < d.Len(); i++ {
			v := d.At(i)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: non-finite value at %d", f, i)
				break
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := Generate("U", 5, testDims)
	b := Generate("U", 5, testDims)
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatal("generator is not deterministic")
		}
	}
}

func TestFieldsDiffer(t *testing.T) {
	a := Generate("U", 5, testDims)
	b := Generate("V", 5, testDims)
	same := 0
	for i := 0; i < a.Len(); i++ {
		if a.At(i) == b.At(i) {
			same++
		}
	}
	if same > a.Len()/10 {
		t.Errorf("U and V identical at %d of %d points", same, a.Len())
	}
}

func TestTimestepsDiffer(t *testing.T) {
	a := Generate("P", 0, testDims)
	b := Generate("P", 24, testDims)
	same := 0
	for i := 0; i < a.Len(); i++ {
		if a.At(i) == b.At(i) {
			same++
		}
	}
	if same > a.Len()/10 {
		t.Errorf("timesteps 0 and 24 identical at %d of %d points", same, a.Len())
	}
}

func TestSparseFieldsAreSparse(t *testing.T) {
	for _, f := range FieldNames {
		d := Generate(f, 24, testDims) // peak intensity
		xs := stats.ToFloat64(d)
		sp := stats.Sparsity(xs, 0)
		if IsSparse(f) {
			if sp < 0.3 {
				t.Errorf("%s: sparsity %.2f, want > 0.3 (sparse species)", f, sp)
			}
			if sp > 0.999 {
				t.Errorf("%s: sparsity %.3f — field is empty at peak intensity", f, sp)
			}
		} else if sp > 0.3 {
			t.Errorf("%s: sparsity %.2f, want < 0.3 (dense field)", f, sp)
		}
	}
}

func TestDenseFieldsAreSmooth(t *testing.T) {
	// pressure should be far smoother than vertical velocity
	p := stats.ToFloat64(Generate("P", 24, testDims))
	w := stats.ToFloat64(Generate("W", 24, testDims))
	sp := stats.SpatialSmoothness(p, testDims)
	sw := stats.SpatialSmoothness(w, testDims)
	if sp < 0.9 {
		t.Errorf("P smoothness = %.3f, want > 0.9", sp)
	}
	if sp <= sw {
		t.Errorf("P (%.3f) should be smoother than W (%.3f)", sp, sw)
	}
}

func TestPressureRangeIsPhysical(t *testing.T) {
	p := Generate("P", 0, testDims)
	lo, hi := p.Range()
	if lo < 0 || hi > 1100 {
		t.Errorf("pressure range [%v, %v] outside plausible hPa values", lo, hi)
	}
	if hi-lo < 100 {
		t.Errorf("pressure range %v too flat (no vertical gradient?)", hi-lo)
	}
}

func TestIntensityEvolves(t *testing.T) {
	// storm winds should peak mid-sequence
	speak := stats.Std(stats.ToFloat64(Generate("V", 24, testDims)))
	sstart := stats.Std(stats.ToFloat64(Generate("V", 0, testDims)))
	if speak <= sstart {
		t.Errorf("wind variability should peak mid-storm: t24=%.2f t0=%.2f", speak, sstart)
	}
}

func TestIsSparseCoversAllFields(t *testing.T) {
	sparse := 0
	for _, f := range FieldNames {
		if IsSparse(f) {
			sparse++
		}
	}
	if sparse != 7 {
		t.Errorf("expected 7 sparse species, got %d", sparse)
	}
	if IsSparse("P") {
		t.Error("P must not be sparse")
	}
}

func BenchmarkGenerateField(b *testing.B) {
	dims := []int{32, 64, 64}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate("W", i%Timesteps, dims)
	}
}

func TestFieldSeededZeroIsCanonical(t *testing.T) {
	a, err := Field("P", 7, testDims)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FieldSeeded("P", 7, testDims, 0)
	if err != nil {
		t.Fatal(err)
	}
	av, bv := a.Float32(), b.Float32()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("seed 0 diverges from canonical Field at %d: %v vs %v", i, av[i], bv[i])
		}
	}
}

func TestFieldSeededDeterministic(t *testing.T) {
	a, _ := FieldSeeded("TC", 3, testDims, 42)
	b, _ := FieldSeeded("TC", 3, testDims, 42)
	av, bv := a.Float32(), b.Float32()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("same seed, different value at %d", i)
		}
	}
}

func TestFieldSeededPerturbsDenseFields(t *testing.T) {
	a, _ := FieldSeeded("P", 7, testDims, 0)
	b, _ := FieldSeeded("P", 7, testDims, 1)
	av, bv := a.Float32(), b.Float32()
	diff := 0
	for i := range av {
		if av[i] != bv[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed 1 is byte-identical to seed 0 on a dense field")
	}
	// the seed perturbs small-scale noise only: the large-scale physics
	// (hydrostatic pressure profile) must survive, so means stay close
	ma := stats.Mean(stats.ToFloat64(a))
	mb := stats.Mean(stats.ToFloat64(b))
	if math.Abs(ma-mb) > 5 {
		t.Errorf("seeds shifted the mean pressure too far: %.2f vs %.2f", ma, mb)
	}
}
