// Package hurricane deterministically synthesizes a dataset with the
// structure of the Hurricane Isabel benchmark used in the paper's
// evaluation: 13 named fields over 48 timesteps on a 3-D grid, mixing
// smooth dense fields (pressure, temperature, winds, vapour) with sparse
// fields that are exactly zero over most of the domain (cloud and
// precipitation species).
//
// This is the substitution for the real Hurricane Isabel data (a
// multi-gigabyte download the paper obtained from the IEEE Visualization
// 2004 contest): the generator reproduces the properties the paper's
// analysis leans on — per-field heterogeneity in sparsity and smoothness,
// and temporal evolution (an intensifying, moving vortex) — which is what
// makes out-of-sample compression-ratio prediction hard on this dataset.
package hurricane

import (
	"fmt"
	"math"

	"repro/internal/pressio"
)

// Timesteps is the number of timesteps in the dataset (paper: all 48).
const Timesteps = 48

// FieldNames lists the 13 Hurricane Isabel fields (paper: all 13).
var FieldNames = []string{
	"CLOUD", "PRECIP", "QCLOUD", "QGRAUP", "QICE", "QRAIN",
	"QSNOW", "QVAPOR", "P", "TC", "U", "V", "W",
}

// DefaultDims is the scaled-down grid (the original is 500×500×100; the
// generator accepts any dims).
var DefaultDims = []int{32, 64, 64} // z (height), y, x

// IsSparse reports whether the field is one of the moisture/precipitation
// species that are exactly zero outside convective regions.
func IsSparse(field string) bool {
	switch field {
	case "CLOUD", "PRECIP", "QCLOUD", "QGRAUP", "QICE", "QRAIN", "QSNOW":
		return true
	}
	return false
}

// hash64 mixes coordinates into a deterministic pseudo-random uint64
// (splitmix64 finalizer).
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// noise01 returns a deterministic pseudo-random value in [0, 1) for an
// integer lattice point and seed.
func noise01(ix, iy, iz int, seed uint64) float64 {
	h := hash64(seed ^ hash64(uint64(ix)*0x8da6b343) ^
		hash64(uint64(iy)*0xd8163841) ^ hash64(uint64(iz)*0xcb1ab31f))
	return float64(h>>11) / float64(1<<53)
}

// valueNoise is trilinearly interpolated lattice noise at frequency freq,
// giving smooth spatially-correlated fluctuations.
func valueNoise(x, y, z float64, freq float64, seed uint64) float64 {
	x, y, z = x*freq, y*freq, z*freq
	ix, iy, iz := int(math.Floor(x)), int(math.Floor(y)), int(math.Floor(z))
	fx, fy, fz := x-float64(ix), y-float64(iy), z-float64(iz)
	// smoothstep fade
	fx = fx * fx * (3 - 2*fx)
	fy = fy * fy * (3 - 2*fy)
	fz = fz * fz * (3 - 2*fz)
	var c [2][2][2]float64
	for dz := 0; dz < 2; dz++ {
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				c[dz][dy][dx] = noise01(ix+dx, iy+dy, iz+dz, seed)
			}
		}
	}
	lerp := func(a, b, t float64) float64 { return a + (b-a)*t }
	x00 := lerp(c[0][0][0], c[0][0][1], fx)
	x01 := lerp(c[0][1][0], c[0][1][1], fx)
	x10 := lerp(c[1][0][0], c[1][0][1], fx)
	x11 := lerp(c[1][1][0], c[1][1][1], fx)
	y0 := lerp(x00, x01, fy)
	y1 := lerp(x10, x11, fy)
	return lerp(y0, y1, fz) // in [0,1)
}

// fbm sums three octaves of value noise, returning roughly [-1, 1].
func fbm(x, y, z float64, seed uint64) float64 {
	v := 0.0
	amp := 0.5
	freq := 4.0
	for o := 0; o < 3; o++ {
		v += amp * (2*valueNoise(x, y, z, freq, seed+uint64(o)*7919) - 1)
		amp /= 2
		freq *= 2
	}
	return v
}

// storm describes the vortex at a timestep: the hurricane track moves
// diagonally across the domain while intensifying and then weakening.
type storm struct {
	cx, cy    float64 // eye position in unit coordinates
	intensity float64 // 0..1
	eyeRadius float64 // unit coordinates
}

func stormAt(step int) storm {
	t := float64(step) / float64(Timesteps-1)
	return storm{
		cx:        0.25 + 0.5*t,
		cy:        0.70 - 0.4*t,
		intensity: 0.4 + 0.6*math.Sin(math.Pi*t), // builds then decays
		eyeRadius: 0.08 + 0.02*math.Cos(2*math.Pi*t),
	}
}

// fieldSeed gives each (field, timestep) its own noise seed so fields are
// uncorrelated in their small-scale structure but temporally coherent in
// their large-scale pattern (the storm track is shared).
func fieldSeed(field string, step int) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range field {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return hash64(h ^ uint64(step)*2654435761)
}

// Generate synthesizes one field at one timestep as float32 data with the
// given dims (z, y, x order). It panics on invalid arguments to mirror
// out-of-range slice access; use Field for a checked variant.
func Generate(field string, step int, dims []int) *pressio.Data {
	d, err := Field(field, step, dims)
	if err != nil {
		panic(err)
	}
	return d
}

// Field synthesizes one field at one timestep, validating arguments.
// It is FieldSeeded at seed 0 — the canonical dataset every in-process
// consumer (predictd's DataRef path, the bench driver) agrees on.
func Field(field string, step int, dims []int) (*pressio.Data, error) {
	return FieldSeeded(field, step, dims, 0)
}

// FieldSeeded synthesizes one field at one timestep under a corpus seed.
// The seed perturbs only the small-scale noise structure; the storm track
// and the per-field physics are shared, so two seeds produce datasets
// with the same compression-difficulty profile but different bytes —
// what a scenario corpus needs to prove its manifest actually pins
// content, not just shape. Seed 0 is the canonical dataset.
func FieldSeeded(field string, step int, dims []int, seed uint64) (*pressio.Data, error) {
	if step < 0 || step >= Timesteps {
		return nil, fmt.Errorf("hurricane: step %d out of range [0, %d)", step, Timesteps)
	}
	if len(dims) != 3 {
		return nil, fmt.Errorf("hurricane: want 3 dims, got %v", dims)
	}
	known := false
	for _, f := range FieldNames {
		if f == field {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("hurricane: unknown field %q (have %v)", field, FieldNames)
	}

	nz, ny, nx := dims[0], dims[1], dims[2]
	out := pressio.NewFloat32(nz, ny, nx)
	buf := out.Float32()
	st := stormAt(step)
	noiseSeed := fieldSeed(field, step)
	if seed != 0 {
		noiseSeed = hash64(noiseSeed ^ seed)
	}

	idx := 0
	for iz := 0; iz < nz; iz++ {
		z := float64(iz) / float64(max(nz-1, 1)) // 0 ground, 1 top
		for iy := 0; iy < ny; iy++ {
			y := float64(iy) / float64(max(ny-1, 1))
			for ix := 0; ix < nx; ix++ {
				x := float64(ix) / float64(max(nx-1, 1))
				buf[idx] = float32(sample(field, x, y, z, st, noiseSeed))
				idx++
			}
		}
	}
	return out, nil
}

// sample evaluates the physical model of one field at unit coordinates.
func sample(field string, x, y, z float64, st storm, seed uint64) float64 {
	dx, dy := x-st.cx, y-st.cy
	r := math.Hypot(dx, dy)
	// radial profiles
	core := math.Exp(-r * r / (2 * 0.15 * 0.15))
	eyewall := math.Exp(-(r - st.eyeRadius) * (r - st.eyeRadius) / (2 * 0.03 * 0.03))
	// spiral rainbands: log-spiral phase modulated by radius
	angle := math.Atan2(dy, dx)
	band := math.Cos(3*angle - 12*r)
	bandEnv := math.Exp(-(r - 0.25) * (r - 0.25) / (2 * 0.12 * 0.12))
	turb := fbm(x, y, z, seed)

	switch field {
	case "P": // pressure: hydrostatic profile + central low
		return 1000 - 850*z - 60*st.intensity*core + 2*turb
	case "TC": // temperature: lapse rate + warm core aloft
		return 28 - 70*z + 8*st.intensity*core*z + 1.5*turb
	case "U": // zonal wind: tangential vortex component + shear
		vt := tangential(r, st)
		return -vt*math.Sin(angle) + 10*z + 3*turb
	case "V": // meridional wind
		vt := tangential(r, st)
		return vt*math.Cos(angle) + 3*turb
	case "W": // vertical velocity: strong in eyewall and bands, noisy
		updraft := 4*st.intensity*eyewall + 1.5*st.intensity*bandEnv*math.Max(band, 0)
		return updraft*math.Sin(math.Pi*z) + 0.8*turb
	case "QVAPOR": // vapour: moist boundary layer, enhanced near storm
		return math.Max(0, (0.02+0.008*st.intensity*core)*math.Exp(-4*z)*(1+0.3*turb))
	case "CLOUD", "QCLOUD": // cloud water: mid-level, eyewall + bands
		amount := st.intensity*(1.2*eyewall+bandEnv*math.Max(band, 0)) - 0.35
		vert := math.Exp(-(z - 0.4) * (z - 0.4) / (2 * 0.2 * 0.2))
		return sparse(amount*vert*(1+0.4*turb), 3e-4)
	case "QRAIN", "PRECIP": // rain: low level under the bands
		amount := st.intensity*(eyewall+1.1*bandEnv*math.Max(band, 0)) - 0.4
		vert := math.Exp(-3 * z)
		return sparse(amount*vert*(1+0.5*turb), 5e-4)
	case "QICE": // ice: only aloft
		amount := st.intensity*(eyewall+bandEnv*math.Max(band, 0)) - 0.45
		vert := math.Exp(-(z - 0.8) * (z - 0.8) / (2 * 0.15 * 0.15))
		return sparse(amount*vert*(1+0.4*turb), 2e-4)
	case "QSNOW": // snow: upper-mid levels, broader than ice
		amount := st.intensity*(0.8*eyewall+bandEnv*math.Max(band, 0)) - 0.42
		vert := math.Exp(-(z - 0.65) * (z - 0.65) / (2 * 0.18 * 0.18))
		return sparse(amount*vert*(1+0.4*turb), 2e-4)
	case "QGRAUP": // graupel: rarest species, tall convective cores only
		amount := st.intensity*(1.5*eyewall+0.6*bandEnv*math.Max(band, 0)) - 0.6
		vert := math.Exp(-(z - 0.55) * (z - 0.55) / (2 * 0.15 * 0.15))
		return sparse(amount*vert*(1+0.4*turb), 1e-4)
	}
	return 0
}

// tangential is the vortex tangential wind speed profile (Rankine-like:
// linear inside the eye, decaying outside).
func tangential(r float64, st storm) float64 {
	vmax := 60 * st.intensity
	if r < st.eyeRadius {
		return vmax * r / st.eyeRadius
	}
	return vmax * math.Pow(st.eyeRadius/r, 0.6)
}

// sparse clamps small or negative amounts to exactly zero, producing the
// large zero regions characteristic of moisture species, and scales the
// remainder.
func sparse(amount, scale float64) float64 {
	if amount <= 0 {
		return 0
	}
	return amount * scale * 50
}
