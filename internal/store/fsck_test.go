package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFsckCleanStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Compact()
	s.Put("c", []byte("3"))
	s.Close()

	rep, err := Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("clean store reported dirty: %+v", rep)
	}
	if rep.SnapshotRecords != 2 || rep.WALRecords != 1 || rep.Live != 3 {
		t.Errorf("counts = %+v", rep)
	}
	if !strings.Contains(rep.String(), "clean") {
		t.Errorf("report = %q", rep.String())
	}
}

func TestFsckRepairsTornTailAndTemps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("good", []byte("v"))
	s.Close()

	wal := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x01, 0x02, 0x03}) // torn frame
	f.Close()
	stale := filepath.Join(dir, "snapshot.db.7.tmp")
	os.WriteFile(stale, []byte("half a snapshot"), 0o644)

	// check-only: report but do not touch
	rep, err := Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornBytes != 3 || rep.TornTruncated || len(rep.StaleTemps) != 1 || rep.TempsRemoved {
		t.Fatalf("check-only report = %+v", rep)
	}
	if _, err := os.Stat(stale); err != nil {
		t.Fatal("check-only fsck removed the temp")
	}

	// repair: truncate + remove, then the store must open clean
	rep, err = Fsck(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornTruncated || !rep.TempsRemoved {
		t.Fatalf("repair report = %+v", rep)
	}
	if got := rep.String(); !strings.Contains(got, "truncated") || !strings.Contains(got, "removed") {
		t.Errorf("report = %q", got)
	}

	rep, err = Fsck(dir, false)
	if err != nil || !rep.Clean() {
		t.Fatalf("store still dirty after repair: %+v, %v", rep, err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok, _ := s2.Get("good"); !ok {
		t.Error("repair lost the good record")
	}
}

func TestFsckRefusesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("1"))
	s.Compact()
	s.Close()

	snap := filepath.Join(dir, "snapshot.db")
	raw, _ := os.ReadFile(snap)
	raw[6] ^= 0xFF
	os.WriteFile(snap, raw, 0o644)

	if _, err := Fsck(dir, true); err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("fsck on corrupt snapshot = %v, want refusal", err)
	}
	// and it must not have "repaired" anything silently
	got, _ := os.ReadFile(snap)
	if string(got) != string(raw) {
		t.Error("fsck mutated a corrupt snapshot")
	}
}

func TestFsckMissingDir(t *testing.T) {
	rep, err := Fsck(filepath.Join(t.TempDir(), "never-created"), false)
	if err != nil {
		t.Fatalf("fsck of absent store = %v", err)
	}
	if !rep.Clean() || rep.Live != 0 {
		t.Errorf("absent store report = %+v", rep)
	}
}
