package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFrameCodecRoundTrip(t *testing.T) {
	for _, f := range []Frame{
		{Op: FramePut, Key: "model/a/b/c", Value: []byte("bytes")},
		{Op: FramePut, Key: "k", Value: nil},
		{Op: FrameDelete, Key: "job/x/y/z"},
	} {
		buf := EncodeFrame(f)
		got, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("decode %q: %v", f.Key, err)
		}
		if n != len(buf) {
			t.Errorf("decode %q consumed %d of %d bytes", f.Key, n, len(buf))
		}
		if got.Op != f.Op || got.Key != f.Key || string(got.Value) != string(f.Value) {
			t.Errorf("round trip %q: got %+v", f.Key, got)
		}
	}
}

func TestFrameDecodeRejectsBitFlip(t *testing.T) {
	buf := EncodeFrame(Frame{Op: FramePut, Key: "k", Value: []byte("value")})
	for i := range buf {
		flipped := append([]byte(nil), buf...)
		flipped[i] ^= 0x40
		if _, _, err := DecodeFrame(flipped); err == nil {
			// flipping a length byte can also yield a "torn" short read;
			// either way a nil error would mean silent corruption
			t.Errorf("flip at byte %d decoded cleanly", i)
		}
	}
}

func TestMirrorSeesAuthoredWritesOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var frames []Frame
	s.SetMirror(func(f Frame) error {
		frames = append(frames, Frame{Op: f.Op, Key: f.Key, Value: append([]byte(nil), f.Value...)})
		return nil
	})

	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	// replicated frames must not re-enter the mirror
	if err := s.Apply(Frame{Op: FramePut, Key: "b", Value: []byte("2")}); err != nil {
		t.Fatal(err)
	}

	if len(frames) != 2 {
		t.Fatalf("mirror saw %d frames, want 2: %+v", len(frames), frames)
	}
	if frames[0].Op != FramePut || frames[0].Key != "a" || string(frames[0].Value) != "1" {
		t.Errorf("frame 0 = %+v", frames[0])
	}
	if frames[1].Op != FrameDelete || frames[1].Key != "a" {
		t.Errorf("frame 1 = %+v", frames[1])
	}
	if v, ok, _ := s.Get("b"); !ok || string(v) != "2" {
		t.Errorf("applied frame not visible: %q %v", v, ok)
	}
}

func TestMirrorErrorSurfacesAndWriteStaysDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("repl log full")
	s.SetMirror(func(Frame) error { return boom })
	if err := s.Put("k", []byte("v")); !errors.Is(err, boom) {
		t.Fatalf("Put with failing mirror = %v, want %v", err, boom)
	}
	s.Close()

	// the record was durable before the mirror ran: a reopen must see it
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok, _ := s2.Get("k"); !ok || string(v) != "v" {
		t.Errorf("durable write lost after mirror error: %q %v", v, ok)
	}
}

func TestApplyIsIdempotentAndRejectsUnknownOp(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f := Frame{Op: FramePut, Key: "k", Value: []byte("v")}
	if err := s.Apply(f); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(f); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s.Get("k"); string(v) != "v" {
		t.Errorf("value = %q", v)
	}
	if err := s.Apply(Frame{Op: 9, Key: "k"}); err == nil {
		t.Error("unknown op applied cleanly")
	}
}

// Satellite: Fsck on a WAL corrupted mid-frame — a bit flip inside an
// interior record, not a torn tail. The checksum catches it and the
// repair policy is torn-from-there: everything before the flip survives,
// the flipped record and everything after it are cut.
func TestFsckRepairsMidFrameBitFlip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("first", []byte("keep-me"))
	rec1 := len(EncodeFrame(Frame{Op: FramePut, Key: "first", Value: []byte("keep-me")}))
	s.Put("second", []byte("flip-me"))
	s.Put("third", []byte("after-the-flip"))
	s.Close()

	wal := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// flip one bit in the middle of the second record's body
	raw[rec1+rec1/2] ^= 0x01
	if err := os.WriteFile(wal, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("mid-frame bit flip reported clean")
	}
	if want := len(raw) - rec1; rep.TornBytes != want {
		t.Errorf("TornBytes = %d, want %d (everything past the flipped record)", rep.TornBytes, want)
	}

	if _, err := Fsck(dir, true); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("store does not reopen after repair: %v", err)
	}
	defer s2.Close()
	if v, ok, _ := s2.Get("first"); !ok || string(v) != "keep-me" {
		t.Errorf("record before the flip lost: %q %v", v, ok)
	}
	if _, ok, _ := s2.Get("second"); ok {
		t.Error("flipped record survived repair")
	}
	if _, ok, _ := s2.Get("third"); ok {
		t.Error("record after the flip survived repair")
	}
}
