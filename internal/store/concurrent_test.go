package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentReadersDuringCompact hammers Get/Keys/Len from several
// goroutines while a writer interleaves Puts with Compact cycles. Run
// under -race (make check does) this pins down that compaction holds the
// store's invariants while readers are in flight: no torn reads, no keys
// transiently missing, values matching what was written.
func TestConcurrentReadersDuringCompact(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const stableKeys = 16
	for i := 0; i < stableKeys; i++ {
		if err := st.Put(key(i), []byte(fmt.Sprintf("stable-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// readers: stable keys must always be visible with the right value,
	// through every Compact
	const readers = 4
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				k := key(i % stableKeys)
				v, ok, err := st.Get(k)
				if err != nil {
					t.Errorf("reader %d: Get(%s): %v", r, k, err)
					return
				}
				if !ok {
					t.Errorf("reader %d: stable key %s vanished mid-compaction", r, k)
					return
				}
				if want := fmt.Sprintf("stable-%d", i%stableKeys); string(v) != want {
					t.Errorf("reader %d: Get(%s) = %q, want %q", r, k, v, want)
					return
				}
				keys, err := st.Keys("stable/")
				if err != nil {
					t.Errorf("reader %d: Keys: %v", r, err)
					return
				}
				if len(keys) < stableKeys {
					t.Errorf("reader %d: Keys sees %d stable keys, want >= %d", r, len(keys), stableKeys)
					return
				}
				if st.Len() < stableKeys {
					t.Errorf("reader %d: Len = %d, want >= %d", r, st.Len(), stableKeys)
					return
				}
			}
		}(r)
	}

	// writer: churn volatile keys and compact repeatedly under the readers
	const rounds = 20
	for round := 0; round < rounds; round++ {
		volatile := fmt.Sprintf("volatile/%d", round)
		if err := st.Put(volatile, []byte("x")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if round > 0 {
			if err := st.Delete(fmt.Sprintf("volatile/%d", round-1)); err != nil {
				t.Fatalf("Delete: %v", err)
			}
		}
		if err := st.Compact(); err != nil {
			t.Fatalf("Compact round %d: %v", round, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	// the compacted store reopens with exactly the surviving records
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(st.dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Len(); got != stableKeys+1 {
		t.Errorf("reopened store has %d records, want %d", got, stableKeys+1)
	}
}

func key(i int) string { return fmt.Sprintf("stable/%d", i) }
