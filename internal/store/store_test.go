package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/faultinject"
)

func TestPutGetDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("a")
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := s.Get("missing"); ok {
		t.Error("missing key found")
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("a"); ok {
		t.Error("deleted key still present")
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Error("deleting a missing key should not error")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put("x", []byte("hello"))
	s.Put("y", []byte("world"))
	s.Put("x", []byte("hello2")) // overwrite
	s.Delete("y")
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, ok, _ := s2.Get("x")
	if !ok || string(v) != "hello2" {
		t.Errorf("x = %q, %v", v, ok)
	}
	if _, ok, _ := s2.Get("y"); ok {
		t.Error("deleted key resurrected")
	}
	if s2.Len() != 1 {
		t.Errorf("Len = %d", s2.Len())
	}
}

func TestCrashRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put("good", []byte("value"))
	s.Close()

	// simulate a crash mid-append: write half a record
	wal := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe}) // garbage partial frame
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	if _, ok, _ := s2.Get("good"); !ok {
		t.Error("whole record lost during recovery")
	}
	// the store must be writable after recovery (tail truncated)
	if err := s2.Put("after", []byte("crash")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, ok, _ := s3.Get("after"); !ok {
		t.Error("post-recovery write lost")
	}
}

func TestCorruptMiddleRecordDropsTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Close()

	// flip a byte inside the first record: both records after the flip
	// point are untrusted
	wal := filepath.Join(dir, "wal.log")
	raw, _ := os.ReadFile(wal)
	raw[6] ^= 0xFF
	os.WriteFile(wal, raw, 0o644)

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 0 {
		t.Errorf("corrupt head should drop everything, Len = %d", s2.Len())
	}
}

func TestKeysPrefix(t *testing.T) {
	s, _ := Open(t.TempDir())
	defer s.Close()
	s.Put("metric/a", []byte("1"))
	s.Put("metric/b", []byte("2"))
	s.Put("target/a", []byte("3"))
	keys, err := s.Keys("metric/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "metric/a" || keys[1] != "metric/b" {
		t.Errorf("Keys = %v", keys)
	}
	all, _ := s.Keys("")
	if len(all) != 3 {
		t.Errorf("all keys = %v", all)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	for i := 0; i < 100; i++ {
		s.Put("k", []byte(fmt.Sprintf("v%d", i))) // 100 versions of one key
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// log should now be empty; snapshot holds the live set
	info, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil || info.Size() != 0 {
		t.Errorf("wal not truncated: %v bytes", info.Size())
	}
	s.Put("k2", []byte("after-compact"))
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, ok, _ := s2.Get("k")
	if !ok || string(v) != "v99" {
		t.Errorf("k = %q, %v after compact+reopen", v, ok)
	}
	if _, ok, _ := s2.Get("k2"); !ok {
		t.Error("post-compact write lost")
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.Close()
	if err := s.Put("x", nil); err != ErrClosed {
		t.Errorf("Put after close = %v", err)
	}
	if _, _, err := s.Get("x"); err != ErrClosed {
		t.Errorf("Get after close = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Error("double close should be a no-op")
	}
}

func TestConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d/k%d", g, i)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Errorf("Len = %d, want 400", s.Len())
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 400 {
		t.Errorf("reopened Len = %d, want 400", s2.Len())
	}
}

func TestRoundTripQuick(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	defer s.Close()
	f := func(key string, value []byte) bool {
		if key == "" {
			return true
		}
		if err := s.Put(key, value); err != nil {
			return false
		}
		got, ok, err := s.Get(key)
		if err != nil || !ok || len(got) != len(value) {
			return false
		}
		for i := range value {
			if got[i] != value[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestTornTailEveryOffset truncates the WAL at every byte offset inside
// the final record and asserts recovery never half-observes it: the
// earlier records survive intact and the torn record is simply absent.
func TestTornTailEveryOffset(t *testing.T) {
	base := t.TempDir()
	// build a reference log: two whole records plus a final one to tear
	ref := filepath.Join(base, "ref")
	s, err := Open(ref)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("keep/a", []byte("alpha"))
	s.Put("keep/b", []byte("beta"))
	whole, err := os.ReadFile(filepath.Join(ref, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	s.Put("torn/c", []byte("gamma-gamma-gamma"))
	s.Close()
	full, err := os.ReadFile(filepath.Join(ref, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(whole) {
		t.Fatal("final record added no bytes?")
	}

	for cut := len(whole); cut < len(full); cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("cut at %d: recovery failed: %v", cut, err)
		}
		if v, ok, _ := s2.Get("keep/a"); !ok || string(v) != "alpha" {
			t.Errorf("cut at %d: keep/a = %q, %v", cut, v, ok)
		}
		if v, ok, _ := s2.Get("keep/b"); !ok || string(v) != "beta" {
			t.Errorf("cut at %d: keep/b = %q, %v", cut, v, ok)
		}
		if v, ok, _ := s2.Get("torn/c"); ok {
			t.Errorf("cut at %d: torn record half-observed as %q", cut, v)
		}
		// the truncated store must accept writes again
		if err := s2.Put("after", []byte("x")); err != nil {
			t.Errorf("cut at %d: post-recovery Put: %v", cut, err)
		}
		s2.Close()
	}
}

// TestCrashDuringCompact uses the fault-injection hooks to kill the
// "process" at both compact crash points and asserts no record is lost
// or half-observed either way.
func TestCrashDuringCompact(t *testing.T) {
	for _, point := range []faultinject.Op{faultinject.OpCompactBefore, faultinject.OpCompactAfter} {
		t.Run(string(point), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				s.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%d", i)))
			}
			s.Delete("k03")
			s.Inject = faultinject.New(1, faultinject.Rule{
				Op: point, Kind: faultinject.KindCrash, Worker: -1,
			})
			err = s.Compact()
			if !errors.Is(err, ErrCrashed) || !errors.Is(err, faultinject.ErrCrash) {
				t.Fatalf("Compact = %v, want injected crash", err)
			}
			// the store is "dead"; every API call must refuse
			if err := s.Put("x", nil); !errors.Is(err, ErrClosed) {
				t.Errorf("Put after crash = %v", err)
			}

			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("recovery after crash-%s failed: %v", point, err)
			}
			defer s2.Close()
			if s2.Len() != 19 {
				t.Errorf("Len = %d, want 19", s2.Len())
			}
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("k%02d", i)
				v, ok, _ := s2.Get(key)
				if i == 3 {
					if ok {
						t.Errorf("deleted %s resurrected", key)
					}
					continue
				}
				if !ok || string(v) != fmt.Sprintf("v%d", i) {
					t.Errorf("%s = %q, %v", key, v, ok)
				}
			}
		})
	}
}

// TestCrashAroundPut exercises the put-before/put-after crash points:
// crash-before loses the record (never written), crash-after keeps it
// (written but unacknowledged) — both recover to a consistent store.
func TestCrashAroundPut(t *testing.T) {
	for _, tc := range []struct {
		point     faultinject.Op
		wantAfter bool
	}{
		{faultinject.OpPutBefore, false},
		{faultinject.OpPutAfter, true},
	} {
		t.Run(string(tc.point), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			s.Put("stable", []byte("yes"))
			s.Inject = faultinject.New(1, faultinject.Rule{
				Op: tc.point, Kind: faultinject.KindCrash, Worker: -1,
			})
			if err := s.Put("doomed", []byte("maybe")); !errors.Is(err, ErrCrashed) {
				t.Fatalf("Put = %v, want crash", err)
			}
			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer s2.Close()
			if _, ok, _ := s2.Get("stable"); !ok {
				t.Error("stable record lost")
			}
			if _, ok, _ := s2.Get("doomed"); ok != tc.wantAfter {
				t.Errorf("doomed present = %v, want %v", ok, tc.wantAfter)
			}
		})
	}
}

// TestCompactLeavesNoStaleTemp asserts a crash between snapshot write
// and rename leaves a temp file that the next Open cleans up.
func TestCompactLeavesNoStaleTemp(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put("a", []byte("1"))
	s.Inject = faultinject.New(1, faultinject.Rule{
		Op: faultinject.OpCompactBefore, Kind: faultinject.KindCrash, Worker: -1,
	})
	if err := s.Compact(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Compact = %v", err)
	}
	// temp names are unique per attempt, so match by suffix
	if n := len(globTemps(t, dir)); n != 1 {
		t.Fatalf("crash before rename should leave 1 temp snapshot, found %d", n)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if tmps := globTemps(t, dir); len(tmps) != 0 {
		t.Errorf("Open did not clean up stale temp snapshots: %v", tmps)
	}
	if _, ok, _ := s2.Get("a"); !ok {
		t.Error("record lost")
	}
}

// globTemps lists the *.tmp entries in dir.
func globTemps(t *testing.T, dir string) []string {
	t.Helper()
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	return tmps
}

// TestCompactFailureRemovesTemp covers the non-crash failure path: when
// the snapshot write itself fails (ENOSPC), the temp from that attempt
// is removed immediately and a retry uses a fresh name.
func TestCompactFailureRemovesTemp(t *testing.T) {
	dir := t.TempDir()
	efs := faultinject.NewErrFS(dir, faultinject.New(1, faultinject.Rule{
		Op: faultinject.OpFSWrite, Kind: faultinject.KindENOSPC, Worker: -1,
		Key: ".tmp", Count: 1,
	}))
	s, err := OpenFS(dir, efs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("a", []byte("1"))
	if err := s.Compact(); !errors.Is(err, faultinject.ErrNoSpace) {
		t.Fatalf("Compact = %v, want ENOSPC", err)
	}
	if tmps := globTemps(t, dir); len(tmps) != 0 {
		t.Fatalf("failed Compact left temps behind: %v", tmps)
	}
	// the store is still alive and a retry succeeds with a fresh name
	if err := s.Compact(); err != nil {
		t.Fatalf("retry Compact = %v", err)
	}
	if v, ok, _ := s.Get("a"); !ok || string(v) != "1" {
		t.Errorf("a = %q, %v after retried compact", v, ok)
	}
}

// TestModelBasedRandomOps drives the store with a random operation
// sequence (put/delete/compact/reopen) and cross-checks every read
// against an in-memory model — the strongest guard on the WAL/snapshot
// interplay.
func TestModelBasedRandomOps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]string{}
	rng := rand.New(rand.NewSource(99))
	keys := []string{"a", "b", "c", "d/e", "d/f", "long/key/with/segments"}

	for step := 0; step < 500; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // put
			k := keys[rng.Intn(len(keys))]
			v := fmt.Sprintf("v%d", rng.Intn(1000))
			if err := s.Put(k, []byte(v)); err != nil {
				t.Fatalf("step %d: Put: %v", step, err)
			}
			model[k] = v
		case 5, 6: // delete
			k := keys[rng.Intn(len(keys))]
			if err := s.Delete(k); err != nil {
				t.Fatalf("step %d: Delete: %v", step, err)
			}
			delete(model, k)
		case 7: // compact
			if err := s.Compact(); err != nil {
				t.Fatalf("step %d: Compact: %v", step, err)
			}
		case 8: // reopen
			if err := s.Close(); err != nil {
				t.Fatalf("step %d: Close: %v", step, err)
			}
			s, err = Open(dir)
			if err != nil {
				t.Fatalf("step %d: reopen: %v", step, err)
			}
		case 9: // verify a random key
			k := keys[rng.Intn(len(keys))]
			got, ok, err := s.Get(k)
			if err != nil {
				t.Fatalf("step %d: Get: %v", step, err)
			}
			want, inModel := model[k]
			if ok != inModel || (ok && string(got) != want) {
				t.Fatalf("step %d: Get(%q) = %q,%v; model %q,%v", step, k, got, ok, want, inModel)
			}
		}
	}
	// full final sweep
	if s.Len() != len(model) {
		t.Errorf("Len = %d, model has %d", s.Len(), len(model))
	}
	for k, want := range model {
		got, ok, _ := s.Get(k)
		if !ok || string(got) != want {
			t.Errorf("final: %q = %q,%v; want %q", k, got, ok, want)
		}
	}
	s.Close()
}
