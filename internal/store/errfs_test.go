package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/faultinject"
)

// TestWALAppendENOSPCRecovers fills the "disk" during a WAL append: the
// Put must surface ENOSPC, the torn prefix must be healed away so later
// appends stay recoverable, and a reopen of the same directory must see
// exactly the acknowledged records.
func TestWALAppendENOSPCRecovers(t *testing.T) {
	dir := t.TempDir()
	efs := faultinject.NewErrFS(dir, faultinject.New(1, faultinject.Rule{
		Op: faultinject.OpFSWrite, Kind: faultinject.KindENOSPC, Worker: -1,
		Key: "wal.log", At: 2, Count: 1,
	}))
	s, err := OpenFS(dir, efs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("first")); err != nil {
		t.Fatal(err)
	}
	err = s.Put("b", []byte("doomed"))
	if !errors.Is(err, faultinject.ErrNoSpace) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put = %v, want ENOSPC", err)
	}
	// the failed record's torn prefix must not poison later appends
	if err := s.Put("c", []byte("third")); err != nil {
		t.Fatalf("Put after ENOSPC = %v", err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after ENOSPC: %v", err)
	}
	defer s2.Close()
	if _, ok, _ := s2.Get("a"); !ok {
		t.Error("acknowledged record a lost")
	}
	if _, ok, _ := s2.Get("b"); ok {
		t.Error("failed record b half-observed")
	}
	if _, ok, _ := s2.Get("c"); !ok {
		t.Error("post-failure record c lost")
	}
}

// TestWALAppendShortWriteHeals is the same recovery contract for a bare
// short write (no errno, just a torn buffer).
func TestWALAppendShortWriteHeals(t *testing.T) {
	dir := t.TempDir()
	efs := faultinject.NewErrFS(dir, faultinject.New(1, faultinject.Rule{
		Op: faultinject.OpFSWrite, Kind: faultinject.KindShort, Worker: -1,
		Key: "wal.log", At: 1, Count: 1,
	}))
	s, err := OpenFS(dir, efs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("torn", []byte("never-lands")); !errors.Is(err, faultinject.ErrShortWrite) {
		t.Fatalf("Put = %v, want short write", err)
	}
	if err := s.Put("whole", []byte("lands")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok, _ := s2.Get("torn"); ok {
		t.Error("short-written record observed")
	}
	if _, ok, _ := s2.Get("whole"); !ok {
		t.Error("healed WAL lost the following record")
	}
}

// TestWALSyncFailureSurfaces runs a Sync-mode store into a failed fsync:
// the Put errors (the caller must not ack), and since the bytes may or
// may not be durable, either outcome is acceptable on reopen — but the
// store must reopen cleanly.
func TestWALSyncFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	efs := faultinject.NewErrFS(dir, faultinject.New(1, faultinject.Rule{
		Op: faultinject.OpFSSync, Kind: faultinject.KindError, Worker: -1,
		Key: "wal.log", At: 2, Count: 1,
	}))
	s, err := OpenFS(dir, efs)
	if err != nil {
		t.Fatal(err)
	}
	s.Sync = true
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("2")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Put with failed fsync = %v, want injected error", err)
	}
	if err := s.Put("c", []byte("3")); err != nil {
		t.Fatalf("Put after failed fsync = %v", err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after failed fsync: %v", err)
	}
	defer s2.Close()
	for _, key := range []string{"a", "c"} {
		if _, ok, _ := s2.Get(key); !ok {
			t.Errorf("acknowledged record %s lost", key)
		}
	}
}

// TestCompactSyncFailureKeepsOldSnapshot fails the fsync of the new
// snapshot: Compact must error, remove its temp, and leave the previous
// snapshot + WAL authoritative.
func TestCompactSyncFailureKeepsOldSnapshot(t *testing.T) {
	dir := t.TempDir()
	efs := faultinject.NewErrFS(dir, faultinject.New(1, faultinject.Rule{
		Op: faultinject.OpFSSync, Kind: faultinject.KindError, Worker: -1,
		Key: ".tmp", Count: 1,
	}))
	s, err := OpenFS(dir, efs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	if err := s.Compact(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Compact = %v, want injected error", err)
	}
	if tmps := globTemps(t, dir); len(tmps) != 0 {
		t.Errorf("failed Compact left temps: %v", tmps)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.db")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("failed Compact must not install a snapshot: %v", err)
	}
	if v, ok, _ := s.Get("a"); !ok || string(v) != "1" {
		t.Errorf("a = %q, %v after failed compact", v, ok)
	}
}

// TestCrashMidWALAppendViaSeam crashes inside the WAL write itself — the
// torn prefix lands, the fs dies, and the frozen copy must recover to
// exactly the pre-crash acknowledged set.
func TestCrashMidWALAppendViaSeam(t *testing.T) {
	dir := t.TempDir()
	efs := faultinject.NewErrFS(dir, faultinject.New(1, faultinject.Rule{
		Op: faultinject.OpFSWrite, Kind: faultinject.KindCrash, Worker: -1,
		Key: "wal.log", At: 3,
	}))
	s, err := OpenFS(dir, efs)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	if err := s.Put("c", []byte("3")); !errors.Is(err, faultinject.ErrCrash) {
		t.Fatalf("Put = %v, want crash", err)
	}
	frozen := efs.FrozenDir()
	if frozen == "" {
		t.Fatal("no frozen state after crash")
	}

	// fsck sees the torn tail, repairs it, and the store reopens
	rep, err := Fsck(frozen, true)
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if rep.TornBytes == 0 || !rep.TornTruncated {
		t.Errorf("fsck missed the torn tail: %+v", rep)
	}
	s2, err := Open(frozen)
	if err != nil {
		t.Fatalf("reopen of frozen state: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Errorf("Len = %d, want 2", s2.Len())
	}
	if _, ok, _ := s2.Get("c"); ok {
		t.Error("torn record c half-observed")
	}
}

// TestTornTailEveryOffsetViaSeam reruns the byte-by-byte torn-tail sweep
// through the vfs seam (OpenFS with the plain OS filesystem wrapped in an
// inert errfs) to pin that recovery behaves identically below the seam.
func TestTornTailEveryOffsetViaSeam(t *testing.T) {
	base := t.TempDir()
	ref := filepath.Join(base, "ref")
	s, err := OpenFS(ref, faultinject.NewErrFS(ref, nil))
	if err != nil {
		t.Fatal(err)
	}
	s.Put("keep/a", []byte("alpha"))
	whole, err := os.ReadFile(filepath.Join(ref, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	s.Put("torn/b", []byte("beta-beta"))
	s.Close()
	full, err := os.ReadFile(filepath.Join(ref, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}

	for cut := len(whole); cut < len(full); cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := OpenFS(dir, faultinject.NewErrFS(dir, nil))
		if err != nil {
			t.Fatalf("cut at %d: recovery failed: %v", cut, err)
		}
		if _, ok, _ := s2.Get("keep/a"); !ok {
			t.Errorf("cut at %d: keep/a lost", cut)
		}
		if _, ok, _ := s2.Get("torn/b"); ok {
			t.Errorf("cut at %d: torn record observed", cut)
		}
		s2.Close()
	}
}

// TestWALHealFailurePoisonsStore kills the heal truncate after a failed
// write: the store must refuse all further operations rather than risk
// acknowledging writes stacked on a torn tail.
func TestWALHealFailurePoisonsStore(t *testing.T) {
	dir := t.TempDir()
	efs := faultinject.NewErrFS(dir, faultinject.New(1,
		faultinject.Rule{
			Op: faultinject.OpFSWrite, Kind: faultinject.KindENOSPC, Worker: -1,
			Key: "wal.log", Count: 1,
		},
		faultinject.Rule{
			Op: faultinject.OpFSTruncate, Kind: faultinject.KindError, Worker: -1,
			Key: "wal.log", Count: 1,
		},
	))
	s, err := OpenFS(dir, efs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("1")); !errors.Is(err, faultinject.ErrNoSpace) {
		t.Fatalf("Put = %v, want ENOSPC", err)
	}
	if err := s.Put("b", []byte("2")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after failed heal = %v, want ErrClosed", err)
	}
}
