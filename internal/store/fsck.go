package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/vfs"
)

// Report describes what Fsck found (and, with repair, fixed) in a store
// directory.
type Report struct {
	// SnapshotRecords is the number of valid records in the snapshot
	// (0 when absent).
	SnapshotRecords int
	// WALRecords is the number of valid records in the write-ahead log.
	WALRecords int
	// TornBytes is the length of the invalid WAL tail (0 when clean).
	TornBytes int
	// TornTruncated reports that the torn tail was truncated away.
	TornTruncated bool
	// StaleTemps lists leftover *.tmp snapshot attempts found.
	StaleTemps []string
	// TempsRemoved reports that the stale temps were deleted.
	TempsRemoved bool
	// Live is the number of live keys after replaying snapshot + WAL.
	Live int
}

// Clean reports whether the store needed no repair.
func (r Report) Clean() bool {
	return r.TornBytes == 0 && len(r.StaleTemps) == 0
}

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "snapshot: %d records\nwal: %d records, %d live keys\n",
		r.SnapshotRecords, r.WALRecords, r.Live)
	if r.TornBytes > 0 {
		verb := "found"
		if r.TornTruncated {
			verb = "truncated"
		}
		fmt.Fprintf(&b, "torn tail: %s %d bytes\n", verb, r.TornBytes)
	}
	for _, tmp := range r.StaleTemps {
		verb := "found"
		if r.TempsRemoved {
			verb = "removed"
		}
		fmt.Fprintf(&b, "stale temp: %s %s\n", verb, tmp)
	}
	if r.Clean() {
		b.WriteString("clean\n")
	}
	return b.String()
}

// Fsck checks (and with repair, fixes) the store at dir on the real
// filesystem. See FsckFS.
func Fsck(dir string, repair bool) (Report, error) {
	return FsckFS(dir, vfs.OS, repair)
}

// FsckFS validates the on-disk state of a store without opening it:
// record CRCs in the snapshot and WAL, a torn WAL tail, and stale temp
// snapshots. With repair it truncates the torn tail and removes the
// temps — exactly what Open would do — so a store that "reopens clean
// or repaired" is mechanically checkable. It refuses to repair a
// corrupt snapshot (corruption anywhere but the WAL tail is data loss,
// not a crash signature) and returns an error instead.
func FsckFS(dir string, fsys vfs.FS, repair bool) (Report, error) {
	var rep Report
	s := &Store{dir: dir, fs: fsys, data: make(map[string][]byte)}

	if names, err := fsys.ReadDir(dir); err == nil {
		for _, name := range names {
			if strings.HasSuffix(name, ".tmp") {
				rep.StaleTemps = append(rep.StaleTemps, name)
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return rep, fmt.Errorf("storecheck: %w", err)
	}

	if snap, err := fsys.ReadFile(s.snapshotPath()); err == nil {
		n, good, err := countRecords(snap, s.data)
		rep.SnapshotRecords = n
		if err != nil || good < len(snap) {
			return rep, fmt.Errorf("storecheck: corrupt snapshot (%d/%d bytes valid): refusing to repair", good, len(snap))
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return rep, fmt.Errorf("storecheck: %w", err)
	}

	wal, err := fsys.ReadFile(s.walPath())
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return rep, fmt.Errorf("storecheck: %w", err)
	}
	n, good, _ := countRecords(wal, s.data)
	rep.WALRecords = n
	rep.TornBytes = len(wal) - good
	rep.Live = len(s.data)

	if !repair {
		return rep, nil
	}
	if rep.TornBytes > 0 {
		if err := fsys.Truncate(s.walPath(), int64(good)); err != nil {
			return rep, fmt.Errorf("storecheck: truncating torn tail: %w", err)
		}
		rep.TornTruncated = true
	}
	for _, tmp := range rep.StaleTemps {
		if err := fsys.Remove(filepath.Join(dir, tmp)); err != nil {
			return rep, fmt.Errorf("storecheck: removing %s: %w", tmp, err)
		}
	}
	rep.TempsRemoved = len(rep.StaleTemps) > 0
	return rep, nil
}

// countRecords walks framed records in buf, applying them to data, and
// returns how many were valid and the byte length of the valid prefix.
func countRecords(buf []byte, data map[string][]byte) (int, int, error) {
	n, off := 0, 0
	for off < len(buf) {
		rec, sz, err := decodeRecord(buf[off:])
		if err != nil {
			return n, off, err
		}
		switch rec.op {
		case opPut:
			data[rec.key] = rec.value
		case opDelete:
			delete(data, rec.key)
		}
		n++
		off += sz
	}
	return n, off, nil
}
