// Package store is the embedded checkpoint database of predict-bench —
// the substitution for the paper's SQLite layer (§4.3). It provides the
// two properties the paper chose SQLite for:
//
//   - atomicity: records are CRC-framed in an append-only write-ahead
//     log; a crash mid-write leaves a torn tail that recovery truncates,
//     so no partial result is ever observed;
//   - queryable partial restore: records are indexed by key (stable
//     option-structure hashes from package opthash) and can be listed by
//     prefix, so a restarted run reloads only the metric results it
//     already computed.
//
// Compact rewrites the live set into a snapshot with an atomic rename,
// bounding log growth across many checkpoint/restart cycles.
//
// Every disk mutation flows through a vfs.FS seam (OpenFS), so the
// fsync/rename/truncate ordering is exercised under injected failures —
// short writes, ENOSPC, failed fsyncs, crash points — by the errfs of
// internal/faultinject. A failed append self-heals: the WAL is truncated
// back to the last durable record, so a surfaced write error never
// silently poisons later appends.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/vfs"
)

const (
	opPut    = byte(1)
	opDelete = byte(2)
)

// Exported frame operation codes — the replication layer ships the
// store's CRC-framed WAL records verbatim between cluster nodes.
const (
	FramePut    = opPut
	FrameDelete = opDelete
)

// Frame is one WAL record in exported form: the unit of replication.
// EncodeFrame/DecodeFrame use the exact on-disk framing (u32 CRC over
// the body), so a shipped frame is validated by the same checksum logic
// Fsck applies to the local log.
type Frame struct {
	Op    byte
	Key   string
	Value []byte
}

// EncodeFrame frames one operation exactly as the WAL does.
func EncodeFrame(f Frame) []byte { return encodeRecord(f.Op, f.Key, f.Value) }

// DecodeFrame decodes and CRC-validates one frame from the head of buf,
// returning the frame and its encoded length. io.ErrUnexpectedEOF means
// a torn frame; a checksum error means corruption.
func DecodeFrame(buf []byte) (Frame, int, error) {
	rec, n, err := decodeRecord(buf)
	if err != nil {
		return Frame{}, 0, err
	}
	return Frame{Op: rec.op, Key: rec.key, Value: rec.value}, n, nil
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Store is a durable string-keyed record store. All methods are safe for
// concurrent use.
type Store struct {
	mu     sync.Mutex
	dir    string
	fs     vfs.FS
	wal    vfs.File
	walLen int64 // bytes of whole, durable records in the WAL
	tmpSeq uint64
	data   map[string][]byte
	closed bool
	// Sync controls whether every Put fsyncs the log (durable against
	// power loss) or leaves flushing to the OS (durable against process
	// crashes only, much faster). Defaults to false, as predict-bench
	// re-runs cheaply relative to fsync-per-record at scale; predictd
	// turns it on so acknowledged fit jobs survive power loss.
	Sync bool
	// mirror, when set, observes every locally-authored durable
	// mutation (see SetMirror).
	mirror func(Frame) error
	// Inject scripts crashes at the store's durability boundaries
	// (tests only). A crash-kind rule at OpPutBefore aborts before the
	// WAL append (the record is lost, as a real crash there would lose
	// it); OpPutAfter aborts after the append (the record is durable
	// but unacknowledged); OpCompactBefore aborts with the snapshot
	// written but not renamed; OpCompactAfter aborts after the rename
	// but before the WAL truncate. All leave the store ErrClosed, as
	// the "process" died. Finer-grained filesystem faults are injected
	// below the seam by opening with OpenFS over a faultinject.ErrFS.
	Inject *faultinject.Plan
}

// ErrCrashed marks operations aborted by an injected crash.
var ErrCrashed = errors.New("store: injected crash")

// fire evaluates the injection plan at a crash point; on a hit it closes
// the store (simulating process death) and returns the error. Call with
// s.mu held.
func (s *Store) fire(op faultinject.Op, key string) error {
	if s.Inject == nil {
		return nil
	}
	d := s.Inject.Fire(op, -1, key)
	if d.Err == nil {
		return nil
	}
	s.closed = true
	s.wal.Close()
	return fmt.Errorf("%w: %w", ErrCrashed, d.Err)
}

// Open loads (or creates) a store rooted at dir on the real filesystem.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, vfs.OS)
}

// OpenFS loads (or creates) a store rooted at dir, with all disk access
// through fsys, replaying the snapshot and write-ahead log. A torn
// record at the log tail — the signature of a crash mid-append — is
// discarded and the log truncated to the last good record.
func OpenFS(dir string, fsys vfs.FS) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, fs: fsys, data: make(map[string][]byte)}

	// stale temp snapshots are the signature of a crash (or failed
	// write) before a compact rename; the real snapshot + WAL are still
	// authoritative. Temp names are unique per attempt, so sweep by
	// suffix rather than any fixed name.
	if names, err := fsys.ReadDir(dir); err == nil {
		for _, name := range names {
			if strings.HasSuffix(name, ".tmp") {
				fsys.Remove(filepath.Join(dir, name))
			}
		}
	}

	// snapshot first, then the log on top
	if snap, err := fsys.ReadFile(s.snapshotPath()); err == nil {
		if err := s.replay(snap, nil); err != nil {
			return nil, fmt.Errorf("store: corrupt snapshot: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: %w", err)
	}

	logBytes, err := fsys.ReadFile(s.walPath())
	if errors.Is(err, os.ErrNotExist) {
		logBytes = nil
	} else if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	goodLen := 0
	if err := s.replay(logBytes, &goodLen); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if goodLen < len(logBytes) {
		// torn tail: truncate to the last whole record
		if err := fsys.Truncate(s.walPath(), int64(goodLen)); err != nil {
			return nil, fmt.Errorf("store: truncating torn log: %w", err)
		}
	}
	wal, err := fsys.OpenFile(s.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.wal = wal
	s.walLen = int64(goodLen)
	return s, nil
}

func (s *Store) walPath() string      { return filepath.Join(s.dir, "wal.log") }
func (s *Store) snapshotPath() string { return filepath.Join(s.dir, "snapshot.db") }

// replay applies framed records from buf to the in-memory map. When
// goodLen is non-nil, a torn/corrupt tail is tolerated and *goodLen
// reports the length of the valid prefix; when nil, any corruption is an
// error (snapshots are written atomically and must be whole).
func (s *Store) replay(buf []byte, goodLen *int) error {
	off := 0
	for off < len(buf) {
		rec, n, err := decodeRecord(buf[off:])
		if err != nil {
			if goodLen != nil {
				*goodLen = off
				return nil
			}
			return err
		}
		switch rec.op {
		case opPut:
			s.data[rec.key] = rec.value
		case opDelete:
			delete(s.data, rec.key)
		}
		off += n
	}
	if goodLen != nil {
		*goodLen = off
	}
	return nil
}

type record struct {
	op    byte
	key   string
	value []byte
}

// frame: u32 crc (of the rest), u8 op, u32 keyLen, u32 valLen, key, val
func encodeRecord(op byte, key string, value []byte) []byte {
	body := make([]byte, 0, 9+len(key)+len(value))
	body = append(body, op)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(key)))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(value)))
	body = append(body, key...)
	body = append(body, value...)
	out := make([]byte, 0, 4+len(body))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	return append(out, body...)
}

func decodeRecord(buf []byte) (record, int, error) {
	if len(buf) < 13 {
		return record{}, 0, io.ErrUnexpectedEOF
	}
	crc := binary.LittleEndian.Uint32(buf)
	op := buf[4]
	keyLen := int(binary.LittleEndian.Uint32(buf[5:]))
	valLen := int(binary.LittleEndian.Uint32(buf[9:]))
	total := 13 + keyLen + valLen
	if keyLen < 0 || valLen < 0 || len(buf) < total {
		return record{}, 0, io.ErrUnexpectedEOF
	}
	body := buf[4:total]
	if crc32.ChecksumIEEE(body) != crc {
		return record{}, 0, errors.New("store: bad record checksum")
	}
	key := string(buf[13 : 13+keyLen])
	value := append([]byte(nil), buf[13+keyLen:total]...)
	return record{op: op, key: key, value: value}, total, nil
}

// appendRecord writes one framed record to the WAL (fsyncing under
// Sync) and advances walLen. On any write or sync failure it heals the
// tail — truncating back to the last durable record so torn bytes can
// never precede later appends — and surfaces the error; if even the
// heal fails (the disk is gone, or an injected crash killed the fs),
// the store poisons itself closed rather than acknowledge writes it
// cannot make durable. Call with s.mu held.
func (s *Store) appendRecord(rec []byte) error {
	if _, err := s.wal.Write(rec); err != nil {
		s.healTail()
		return fmt.Errorf("store: %w", err)
	}
	if s.Sync {
		if err := s.wal.Sync(); err != nil {
			s.healTail()
			return fmt.Errorf("store: %w", err)
		}
	}
	s.walLen += int64(len(rec))
	return nil
}

// healTail truncates the WAL back to the last whole durable record
// after a failed append. Call with s.mu held.
func (s *Store) healTail() {
	if err := s.wal.Truncate(s.walLen); err != nil {
		s.closed = true
		s.wal.Close()
	}
}

// SetMirror installs the replication hook: every successful locally-
// authored Put/Delete is handed to m as a Frame, under the store lock,
// after the record is durable in the WAL and applied in memory. The
// cluster layer uses it to append the mutation to the shippable
// replication log. A mirror error is surfaced to the caller — the write
// is locally durable but was not accepted for replication, so the
// caller must treat the operation as failed and retry (the store's
// callers are idempotent by design). Mutations applied via Apply (i.e.
// frames shipped from a peer) never reach the mirror.
func (s *Store) SetMirror(m func(Frame) error) {
	s.mu.Lock()
	s.mirror = m
	s.mu.Unlock()
}

// Put durably stores value under key (last write wins).
func (s *Store) Put(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(key, value, s.mirror)
}

func (s *Store) putLocked(key string, value []byte, mirror func(Frame) error) error {
	if s.closed {
		return ErrClosed
	}
	if err := s.fire(faultinject.OpPutBefore, key); err != nil {
		return err
	}
	if err := s.appendRecord(encodeRecord(opPut, key, value)); err != nil {
		return err
	}
	if err := s.fire(faultinject.OpPutAfter, key); err != nil {
		return err
	}
	s.data[key] = append([]byte(nil), value...)
	if mirror != nil {
		if err := mirror(Frame{Op: opPut, Key: key, Value: value}); err != nil {
			return fmt.Errorf("store: mirror: %w", err)
		}
	}
	return nil
}

// Apply performs a replicated mutation: identical durability to
// Put/Delete, but the mirror is not invoked, so frames applied from a
// peer's shipped log are never re-authored into this node's own
// replication log. Applying the same frame twice is idempotent.
func (s *Store) Apply(f Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch f.Op {
	case opPut:
		return s.putLocked(f.Key, f.Value, nil)
	case opDelete:
		return s.deleteLocked(f.Key, nil)
	default:
		return fmt.Errorf("store: apply: unknown frame op %d", f.Op)
	}
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	v, ok := s.data[key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Delete removes key; deleting a missing key is not an error.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteLocked(key, s.mirror)
}

func (s *Store) deleteLocked(key string, mirror func(Frame) error) error {
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.data[key]; !ok {
		return nil
	}
	if err := s.appendRecord(encodeRecord(opDelete, key, nil)); err != nil {
		return err
	}
	delete(s.data, key)
	if mirror != nil {
		if err := mirror(Frame{Op: opDelete, Key: key}); err != nil {
			return fmt.Errorf("store: mirror: %w", err)
		}
	}
	return nil
}

// Keys returns the stored keys with the given prefix, sorted — the
// partial-restore query predict-bench uses to find finished tasks.
func (s *Store) Keys(prefix string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Compact writes the live set as a snapshot (atomic rename) and truncates
// the log.
func (s *Store) Compact() (err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var snap []byte
	for _, k := range keys {
		snap = append(snap, encodeRecord(opPut, k, s.data[k])...)
	}
	// write + fsync the temp snapshot before the rename, and fsync the
	// directory after: without both, a power loss just after Compact can
	// surface an empty or torn snapshot even though rename is atomic.
	// The temp name is unique per attempt so a failed attempt can never
	// collide with a retry; on any non-crash failure the temp is removed
	// here, and Open sweeps survivors of crashes.
	tmp := fmt.Sprintf("%s.%d.tmp", s.snapshotPath(), s.tmpSeq)
	s.tmpSeq++
	renamed := false
	defer func() {
		// leave the temp in place on injected crashes — the "process"
		// died, and recovery (Open / Fsck) owns the cleanup
		if !renamed && !errors.Is(err, ErrCrashed) {
			s.fs.Remove(tmp)
		}
	}()
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(snap); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.fire(faultinject.OpCompactBefore, s.snapshotPath()); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, s.snapshotPath()); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	renamed = true
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.fire(faultinject.OpCompactAfter, s.snapshotPath()); err != nil {
		return err
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.walLen = 0
	return nil
}

// Close flushes and closes the log; the store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return err
	}
	return s.wal.Close()
}
