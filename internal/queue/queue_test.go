package queue

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunsAllTasks(t *testing.T) {
	q := New(Config{Workers: 4})
	var count atomic.Int64
	for i := 0; i < 50; i++ {
		err := q.Add(Task{
			ID:  fmt.Sprintf("t%d", i),
			Run: func(int) error { count.Add(1); return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	results := q.Run()
	if count.Load() != 50 {
		t.Errorf("ran %d tasks, want 50", count.Load())
	}
	if len(results) != 50 {
		t.Errorf("results = %d", len(results))
	}
	for id, r := range results {
		if r.Err != nil {
			t.Errorf("%s failed: %v", id, r.Err)
		}
	}
}

func TestDependencyOrdering(t *testing.T) {
	q := New(Config{Workers: 4})
	var mu sync.Mutex
	var order []string
	record := func(id string) func(int) error {
		return func(int) error {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		}
	}
	q.Add(Task{ID: "a", Run: record("a")})
	q.Add(Task{ID: "b", Deps: []string{"a"}, Run: record("b")})
	q.Add(Task{ID: "c", Deps: []string{"a", "b"}, Run: record("c")})
	results := q.Run()
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	if !(pos["a"] < pos["b"] && pos["b"] < pos["c"]) {
		t.Errorf("order violated: %v", order)
	}
}

func TestUnknownAndDuplicateTasks(t *testing.T) {
	q := New(Config{})
	if err := q.Add(Task{ID: ""}); err == nil {
		t.Error("empty ID accepted")
	}
	q.Add(Task{ID: "x", Run: func(int) error { return nil }})
	if err := q.Add(Task{ID: "x"}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := q.Add(Task{ID: "y", Deps: []string{"nope"}}); err == nil {
		t.Error("unknown dependency accepted")
	}
	q.Run()
}

func TestCheckpointSkip(t *testing.T) {
	done := map[string]bool{"a": true, "b": true}
	q := New(Config{Workers: 2, Completed: done})
	var ran atomic.Int64
	q.Add(Task{ID: "a", Run: func(int) error { ran.Add(1); return nil }})
	q.Add(Task{ID: "b", Run: func(int) error { ran.Add(1); return nil }})
	// c depends on checkpointed tasks and must still run
	q.Add(Task{ID: "c", Deps: []string{"a", "b"}, Run: func(int) error { ran.Add(1); return nil }})
	results := q.Run()
	if ran.Load() != 1 {
		t.Errorf("ran %d tasks, want 1 (two skipped)", ran.Load())
	}
	if !results["a"].Skipped || !results["b"].Skipped {
		t.Error("checkpointed tasks not marked skipped")
	}
	if results["c"].Skipped || results["c"].Err != nil {
		t.Errorf("c = %+v", results["c"])
	}
}

func TestRetriesOnFailure(t *testing.T) {
	q := New(Config{Workers: 2, Retries: 3})
	var attempts atomic.Int64
	q.Add(Task{ID: "flaky", Run: func(int) error {
		if attempts.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	}})
	results := q.Run()
	r := results["flaky"]
	if r.Err != nil {
		t.Errorf("flaky task should eventually succeed: %v", r.Err)
	}
	if r.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", r.Attempts)
	}
}

func TestPermanentFailureAbandonsDependents(t *testing.T) {
	q := New(Config{Workers: 2, Retries: 1})
	q.Add(Task{ID: "bad", Run: func(int) error { return errors.New("always") }})
	q.Add(Task{ID: "child", Deps: []string{"bad"}, Run: func(int) error { return nil }})
	q.Add(Task{ID: "grandchild", Deps: []string{"child"}, Run: func(int) error { return nil }})
	q.Add(Task{ID: "unrelated", Run: func(int) error { return nil }})
	results := q.Run()
	if results["bad"].Err == nil {
		t.Error("bad should fail")
	}
	if !errors.Is(results["child"].Err, ErrDependencyFailed) {
		t.Errorf("child err = %v", results["child"].Err)
	}
	if !errors.Is(results["grandchild"].Err, ErrDependencyFailed) {
		t.Errorf("grandchild err = %v", results["grandchild"].Err)
	}
	if results["unrelated"].Err != nil {
		t.Error("unrelated task should still run")
	}
}

func TestFailureInjectionRecovers(t *testing.T) {
	// with injected faults and enough retries, everything completes
	q := New(Config{Workers: 4, Retries: 10, FailureRate: 0.3, Seed: 42})
	for i := 0; i < 40; i++ {
		q.Add(Task{ID: fmt.Sprintf("t%d", i), Run: func(int) error { return nil }})
	}
	results := q.Run()
	retried := 0
	for id, r := range results {
		if r.Err != nil {
			t.Errorf("%s failed despite retries: %v", id, r.Err)
		}
		if r.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Error("failure injection never fired (suspicious at rate 0.3)")
	}
}

func TestDataLocalityPreference(t *testing.T) {
	// tasks sharing a DataKey should mostly land on the same worker
	q := New(Config{Workers: 4})
	var mu sync.Mutex
	placement := map[string][]int{}
	keys := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < 64; i++ {
		key := keys[i%len(keys)]
		q.Add(Task{
			ID:      fmt.Sprintf("t%d", i),
			DataKey: key,
			Run: func(worker int) error {
				mu.Lock()
				placement[key] = append(placement[key], worker)
				mu.Unlock()
				return nil
			},
		})
	}
	q.Run()
	// each key should see far fewer distinct workers than tasks
	for key, workers := range placement {
		distinct := map[int]bool{}
		for _, w := range workers {
			distinct[w] = true
		}
		if len(distinct) > 3 {
			t.Logf("key %s spread over %d workers (%v)", key, len(distinct), workers)
		}
		if len(workers) != 16 {
			t.Errorf("key %s ran %d tasks, want 16", key, len(workers))
		}
	}
}

func TestDynamicAddDuringRun(t *testing.T) {
	q := New(Config{Workers: 2})
	var ran atomic.Int64
	q.Add(Task{ID: "seed", Run: func(int) error {
		ran.Add(1)
		// an invalidation discovered mid-run adds more work
		for i := 0; i < 5; i++ {
			if err := q.Add(Task{
				ID:  fmt.Sprintf("dynamic%d", i),
				Run: func(int) error { ran.Add(1); return nil },
			}); err != nil {
				return err
			}
		}
		return nil
	}})
	results := q.Run()
	if ran.Load() != 6 {
		t.Errorf("ran %d, want 6 (1 seed + 5 dynamic)", ran.Load())
	}
	if len(results) != 6 {
		t.Errorf("results = %d", len(results))
	}
}

func TestNoRetriesWhenNegative(t *testing.T) {
	q := New(Config{Workers: 1, Retries: -1})
	var attempts atomic.Int64
	q.Add(Task{ID: "once", Run: func(int) error {
		attempts.Add(1)
		return errors.New("fail")
	}})
	results := q.Run()
	if attempts.Load() != 1 {
		t.Errorf("attempts = %d, want 1", attempts.Load())
	}
	if results["once"].Err == nil {
		t.Error("failure not reported")
	}
}

func TestStats(t *testing.T) {
	q := New(Config{Workers: 2, Retries: 3, Completed: map[string]bool{"skip": true}})
	q.Add(Task{ID: "skip", Run: func(int) error { return nil }})
	var tries atomic.Int64
	q.Add(Task{ID: "retry", Run: func(int) error {
		if tries.Add(1) < 2 {
			return errors.New("transient")
		}
		return nil
	}})
	for i := 0; i < 8; i++ {
		q.Add(Task{ID: fmt.Sprintf("k%d", i), DataKey: "shared", Run: func(int) error { return nil }})
	}
	q.Run()
	s := q.Stats()
	if s.Tasks != 10 {
		t.Errorf("Tasks = %d, want 10", s.Tasks)
	}
	if s.Skipped != 1 {
		t.Errorf("Skipped = %d, want 1", s.Skipped)
	}
	if s.Retried != 1 || s.Failed != 0 {
		t.Errorf("Retried/Failed = %d/%d, want 1/0", s.Retried, s.Failed)
	}
	if s.LocalityHits == 0 {
		t.Error("8 tasks sharing a DataKey should produce locality hits")
	}
	if s.TotalAttempts < s.Tasks-s.Skipped {
		t.Errorf("TotalAttempts = %d inconsistent", s.TotalAttempts)
	}
}
