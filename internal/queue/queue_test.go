package queue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func TestRunsAllTasks(t *testing.T) {
	q := New(Config{Workers: 4})
	var count atomic.Int64
	for i := 0; i < 50; i++ {
		err := q.Add(Task{
			ID:  fmt.Sprintf("t%d", i),
			Run: func(context.Context, int) error { count.Add(1); return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	results := q.Run(context.Background())
	if count.Load() != 50 {
		t.Errorf("ran %d tasks, want 50", count.Load())
	}
	if len(results) != 50 {
		t.Errorf("results = %d", len(results))
	}
	for id, r := range results {
		if r.Err != nil {
			t.Errorf("%s failed: %v", id, r.Err)
		}
	}
}

func TestDependencyOrdering(t *testing.T) {
	q := New(Config{Workers: 4})
	var mu sync.Mutex
	var order []string
	record := func(id string) func(context.Context, int) error {
		return func(context.Context, int) error {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		}
	}
	q.Add(Task{ID: "a", Run: record("a")})
	q.Add(Task{ID: "b", Deps: []string{"a"}, Run: record("b")})
	q.Add(Task{ID: "c", Deps: []string{"a", "b"}, Run: record("c")})
	results := q.Run(context.Background())
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	if !(pos["a"] < pos["b"] && pos["b"] < pos["c"]) {
		t.Errorf("order violated: %v", order)
	}
}

func TestUnknownAndDuplicateTasks(t *testing.T) {
	q := New(Config{})
	if err := q.Add(Task{ID: ""}); err == nil {
		t.Error("empty ID accepted")
	}
	q.Add(Task{ID: "x", Run: func(context.Context, int) error { return nil }})
	if err := q.Add(Task{ID: "x"}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := q.Add(Task{ID: "y", Deps: []string{"nope"}}); err == nil {
		t.Error("unknown dependency accepted")
	}
	q.Run(context.Background())
}

func TestCheckpointSkip(t *testing.T) {
	done := map[string]bool{"a": true, "b": true}
	q := New(Config{Workers: 2, Completed: done})
	var ran atomic.Int64
	q.Add(Task{ID: "a", Run: func(context.Context, int) error { ran.Add(1); return nil }})
	q.Add(Task{ID: "b", Run: func(context.Context, int) error { ran.Add(1); return nil }})
	// c depends on checkpointed tasks and must still run
	q.Add(Task{ID: "c", Deps: []string{"a", "b"}, Run: func(context.Context, int) error { ran.Add(1); return nil }})
	results := q.Run(context.Background())
	if ran.Load() != 1 {
		t.Errorf("ran %d tasks, want 1 (two skipped)", ran.Load())
	}
	if !results["a"].Skipped || !results["b"].Skipped {
		t.Error("checkpointed tasks not marked skipped")
	}
	if results["c"].Skipped || results["c"].Err != nil {
		t.Errorf("c = %+v", results["c"])
	}
}

func TestRetriesOnFailure(t *testing.T) {
	q := New(Config{Workers: 2, Retries: 3})
	var attempts atomic.Int64
	q.Add(Task{ID: "flaky", Run: func(context.Context, int) error {
		if attempts.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	}})
	results := q.Run(context.Background())
	r := results["flaky"]
	if r.Err != nil {
		t.Errorf("flaky task should eventually succeed: %v", r.Err)
	}
	if r.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", r.Attempts)
	}
}

func TestPermanentFailureAbandonsDependents(t *testing.T) {
	q := New(Config{Workers: 2, Retries: 1})
	q.Add(Task{ID: "bad", Run: func(context.Context, int) error { return errors.New("always") }})
	q.Add(Task{ID: "child", Deps: []string{"bad"}, Run: func(context.Context, int) error { return nil }})
	q.Add(Task{ID: "grandchild", Deps: []string{"child"}, Run: func(context.Context, int) error { return nil }})
	q.Add(Task{ID: "unrelated", Run: func(context.Context, int) error { return nil }})
	results := q.Run(context.Background())
	if results["bad"].Err == nil {
		t.Error("bad should fail")
	}
	if !errors.Is(results["child"].Err, ErrDependencyFailed) {
		t.Errorf("child err = %v", results["child"].Err)
	}
	if !errors.Is(results["grandchild"].Err, ErrDependencyFailed) {
		t.Errorf("grandchild err = %v", results["grandchild"].Err)
	}
	if results["unrelated"].Err != nil {
		t.Error("unrelated task should still run")
	}
}

func TestFailureInjectionRecovers(t *testing.T) {
	// with injected faults and enough retries, everything completes
	q := New(Config{
		Workers: 4, Retries: 10, Seed: 42,
		Inject: faultinject.New(42, faultinject.Rule{
			Op: faultinject.OpTask, Kind: faultinject.KindError, Worker: -1, Rate: 0.3,
		}),
	})
	for i := 0; i < 40; i++ {
		q.Add(Task{ID: fmt.Sprintf("t%d", i), Run: func(context.Context, int) error { return nil }})
	}
	results := q.Run(context.Background())
	retried := 0
	for id, r := range results {
		if r.Err != nil {
			t.Errorf("%s failed despite retries: %v", id, r.Err)
		}
		if r.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Error("failure injection never fired (suspicious at rate 0.3)")
	}
	if s := q.Stats(); s.Backoffs == 0 {
		t.Error("retries should have waited out backoff delays")
	}
}

func TestDataLocalityPreference(t *testing.T) {
	// tasks sharing a DataKey should mostly land on the same worker
	q := New(Config{Workers: 4})
	var mu sync.Mutex
	placement := map[string][]int{}
	keys := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < 64; i++ {
		key := keys[i%len(keys)]
		q.Add(Task{
			ID:      fmt.Sprintf("t%d", i),
			DataKey: key,
			Run: func(_ context.Context, worker int) error {
				mu.Lock()
				placement[key] = append(placement[key], worker)
				mu.Unlock()
				return nil
			},
		})
	}
	q.Run(context.Background())
	// each key should see far fewer distinct workers than tasks
	for key, workers := range placement {
		distinct := map[int]bool{}
		for _, w := range workers {
			distinct[w] = true
		}
		if len(distinct) > 3 {
			t.Logf("key %s spread over %d workers (%v)", key, len(distinct), workers)
		}
		if len(workers) != 16 {
			t.Errorf("key %s ran %d tasks, want 16", key, len(workers))
		}
	}
}

func TestDynamicAddDuringRun(t *testing.T) {
	q := New(Config{Workers: 2})
	var ran atomic.Int64
	q.Add(Task{ID: "seed", Run: func(context.Context, int) error {
		ran.Add(1)
		// an invalidation discovered mid-run adds more work
		for i := 0; i < 5; i++ {
			if err := q.Add(Task{
				ID:  fmt.Sprintf("dynamic%d", i),
				Run: func(context.Context, int) error { ran.Add(1); return nil },
			}); err != nil {
				return err
			}
		}
		return nil
	}})
	results := q.Run(context.Background())
	if ran.Load() != 6 {
		t.Errorf("ran %d, want 6 (1 seed + 5 dynamic)", ran.Load())
	}
	if len(results) != 6 {
		t.Errorf("results = %d", len(results))
	}
}

func TestNoRetriesWhenNegative(t *testing.T) {
	q := New(Config{Workers: 1, Retries: -1})
	var attempts atomic.Int64
	q.Add(Task{ID: "once", Run: func(context.Context, int) error {
		attempts.Add(1)
		return errors.New("fail")
	}})
	results := q.Run(context.Background())
	if attempts.Load() != 1 {
		t.Errorf("attempts = %d, want 1", attempts.Load())
	}
	if results["once"].Err == nil {
		t.Error("failure not reported")
	}
}

func TestStats(t *testing.T) {
	q := New(Config{Workers: 2, Retries: 3, Completed: map[string]bool{"skip": true}})
	q.Add(Task{ID: "skip", Run: func(context.Context, int) error { return nil }})
	var tries atomic.Int64
	q.Add(Task{ID: "retry", Run: func(context.Context, int) error {
		if tries.Add(1) < 2 {
			return errors.New("transient")
		}
		return nil
	}})
	for i := 0; i < 8; i++ {
		q.Add(Task{ID: fmt.Sprintf("k%d", i), DataKey: "shared", Run: func(context.Context, int) error { return nil }})
	}
	q.Run(context.Background())
	s := q.Stats()
	if s.Tasks != 10 {
		t.Errorf("Tasks = %d, want 10", s.Tasks)
	}
	if s.Skipped != 1 {
		t.Errorf("Skipped = %d, want 1", s.Skipped)
	}
	if s.Retried != 1 || s.Failed != 0 {
		t.Errorf("Retried/Failed = %d/%d, want 1/0", s.Retried, s.Failed)
	}
	if s.LocalityHits == 0 {
		t.Error("8 tasks sharing a DataKey should produce locality hits")
	}
	if s.TotalAttempts < s.Tasks-s.Skipped {
		t.Errorf("TotalAttempts = %d inconsistent", s.TotalAttempts)
	}
}

func TestTaskTimeoutKillsHungTask(t *testing.T) {
	q := New(Config{Workers: 2, Retries: 1, TaskTimeout: 20 * time.Millisecond})
	var hungAttempts atomic.Int64
	q.Add(Task{ID: "hung", Run: func(ctx context.Context, _ int) error {
		hungAttempts.Add(1)
		<-ctx.Done() // a well-behaved hang: blocks until the deadline kills it
		return ctx.Err()
	}})
	q.Add(Task{ID: "ok", Run: func(context.Context, int) error { return nil }})
	done := make(chan map[string]*Result, 1)
	go func() { done <- q.Run(context.Background()) }()
	select {
	case results := <-done:
		r := results["hung"]
		if r.Err == nil || !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Errorf("hung err = %v, want deadline exceeded", r.Err)
		}
		if !r.TimedOut {
			t.Error("result not marked TimedOut")
		}
		if r.Attempts != 2 {
			t.Errorf("attempts = %d, want 2 (initial + 1 retry)", r.Attempts)
		}
		if results["ok"].Err != nil {
			t.Errorf("ok task failed: %v", results["ok"].Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queue wedged on a hung task")
	}
	if s := q.Stats(); s.TimedOut != 2 {
		t.Errorf("Stats.TimedOut = %d, want 2", s.TimedOut)
	}
}

func TestTimeoutAbandonsNonCooperativeTask(t *testing.T) {
	// a task that ignores ctx entirely must not wedge its worker slot
	q := New(Config{Workers: 1, Retries: -1, TaskTimeout: 10 * time.Millisecond})
	release := make(chan struct{})
	q.Add(Task{ID: "stubborn", Run: func(context.Context, int) error {
		<-release // ignores ctx
		return nil
	}})
	q.Add(Task{ID: "next", Run: func(context.Context, int) error { return nil }})
	done := make(chan map[string]*Result, 1)
	go func() { done <- q.Run(context.Background()) }()
	select {
	case results := <-done:
		if !errors.Is(results["stubborn"].Err, context.DeadlineExceeded) {
			t.Errorf("stubborn err = %v", results["stubborn"].Err)
		}
		if results["next"].Err != nil {
			t.Error("worker slot never freed for the next task")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker wedged by a ctx-ignoring task")
	}
	close(release) // let the leaked goroutine finish
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	q := New(Config{Workers: 2, Retries: 0})
	started := make(chan struct{})
	var once sync.Once
	q.Add(Task{ID: "blocker", Run: func(ctx context.Context, _ int) error {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return ctx.Err()
	}})
	for i := 0; i < 20; i++ {
		q.Add(Task{ID: fmt.Sprintf("later%d", i), Deps: []string{"blocker"},
			Run: func(context.Context, int) error { return nil }})
	}
	go func() {
		<-started
		cancel()
	}()
	results := q.Run(ctx)
	if len(results) != 21 {
		t.Fatalf("results = %d, want 21 (every task gets a terminal record)", len(results))
	}
	if results["blocker"].Err == nil {
		t.Error("blocker should fail with the cancellation error")
	}
	cancelled := 0
	for _, r := range results {
		if errors.Is(r.Err, ErrCancelled) || errors.Is(r.Err, ErrDependencyFailed) {
			cancelled++
		}
	}
	// 20 never-started dependents + the blocker itself, whose in-flight
	// attempt died of the cancellation
	if cancelled != 21 {
		t.Errorf("cancelled/abandoned = %d, want 21", cancelled)
	}
	if !errors.Is(results["blocker"].Err, ErrCancelled) {
		t.Errorf("blocker err = %v, want ErrCancelled wrap", results["blocker"].Err)
	}
	if s := q.Stats(); s.Cancelled == 0 {
		t.Error("Stats.Cancelled not counted")
	}
}

func TestBackoffDelaysRetries(t *testing.T) {
	q := New(Config{
		Workers: 1, Retries: 3, Seed: 5,
		BackoffBase: 10 * time.Millisecond, BackoffMax: 40 * time.Millisecond,
	})
	var times []time.Time
	q.Add(Task{ID: "flaky", Run: func(context.Context, int) error {
		times = append(times, time.Now())
		if len(times) < 4 {
			return errors.New("transient")
		}
		return nil
	}})
	if r := q.Run(context.Background())["flaky"]; r.Err != nil {
		t.Fatalf("flaky: %v", r.Err)
	}
	if len(times) != 4 {
		t.Fatalf("attempts = %d", len(times))
	}
	for i := 1; i < len(times); i++ {
		gap := times[i].Sub(times[i-1])
		// jittered backoff is at least base/2 (first retry) and grows
		if gap < 5*time.Millisecond {
			t.Errorf("retry %d came after %v, want ≥ 5ms of backoff", i, gap)
		}
	}
	if s := q.Stats(); s.Backoffs != 3 {
		t.Errorf("Backoffs = %d, want 3", s.Backoffs)
	}
}

func TestDeterministicInjectionSequence(t *testing.T) {
	// the same plan + seed over the same schedule yields the same
	// failure sequence (single worker makes the schedule deterministic)
	run := func() []string {
		plan := faultinject.New(11, faultinject.Rule{
			Op: faultinject.OpTask, Kind: faultinject.KindError, Worker: -1, Rate: 0.4,
		})
		q := New(Config{Workers: 1, Retries: 5, Seed: 11, BackoffBase: -1, Inject: plan})
		for i := 0; i < 20; i++ {
			q.Add(Task{ID: fmt.Sprintf("t%02d", i), Run: func(context.Context, int) error { return nil }})
		}
		q.Run(context.Background())
		var seq []string
		for _, e := range plan.Log() {
			seq = append(seq, e.Kind+":"+e.Key)
		}
		return seq
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no injections fired")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("injection sequence diverged:\n%v\n%v", a, b)
	}
}

// TestStressDeepChainsWithFaults is the lost-wakeup regression test: many
// workers contending over deep dependency chains with injected faults,
// timeouts, and dynamic adds. Before the sync.Cond rewrite, a worker
// could park after a nil pick while another worker was between releasing
// dependents and signalling, missing the wakeup; under load that wedged
// the queue. Run it under -race (`make check`).
func TestStressDeepChainsWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const (
		chains = 24
		depth  = 12
	)
	plan := faultinject.New(3, faultinject.Rule{
		Op: faultinject.OpTask, Kind: faultinject.KindError, Worker: -1, Rate: 0.15,
	})
	q := New(Config{
		Workers: 16, Retries: 30, Seed: 3,
		BackoffBase: 100 * time.Microsecond, BackoffMax: time.Millisecond,
		TaskTimeout: time.Second,
		Inject:      plan,
	})
	var ran atomic.Int64
	for c := 0; c < chains; c++ {
		var prev string
		for d := 0; d < depth; d++ {
			id := fmt.Sprintf("c%02d/d%02d", c, d)
			var deps []string
			if prev != "" {
				deps = []string{prev}
			}
			task := Task{
				ID: id, DataKey: fmt.Sprintf("chain%d", c), Deps: deps,
				Run: func(context.Context, int) error { ran.Add(1); return nil },
			}
			if d == depth/2 {
				// dynamic fan-out halfway down each chain
				parent := id
				task.Run = func(context.Context, int) error {
					ran.Add(1)
					for j := 0; j < 3; j++ {
						if err := q.Add(Task{
							ID:   fmt.Sprintf("%s/fan%d", parent, j),
							Deps: []string{parent},
							Run:  func(context.Context, int) error { ran.Add(1); return nil },
						}); err != nil {
							return err
						}
					}
					return nil
				}
				// note: fan tasks depend on the task that adds them, which
				// has not completed yet — Add must handle that (it does:
				// the dependency is the running task itself)
				_ = parent
			}
			if err := q.Add(task); err != nil {
				t.Fatal(err)
			}
			prev = id
		}
	}
	done := make(chan map[string]*Result, 1)
	go func() { done <- q.Run(context.Background()) }()
	var results map[string]*Result
	select {
	case results = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("queue wedged (lost wakeup?)")
	}
	want := chains*depth + chains*3
	if len(results) != want {
		t.Fatalf("results = %d, want %d", len(results), want)
	}
	for id, r := range results {
		if r.Err != nil {
			t.Errorf("%s failed: %v", id, r.Err)
		}
	}
	if n := ran.Load(); n != int64(want) {
		t.Errorf("ran %d, want %d", n, want)
	}
}
