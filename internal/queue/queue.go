// Package queue is the distributed task queue of predict-bench — the
// substitution for the MPI-based LibDistributed queue the paper builds on
// (§4.3). Workers are goroutines standing in for ranks; the scheduler
// keeps the semantics the paper needs and most workflow systems lack:
//
//   - data-locality-aware placement: tasks tagged with a DataKey prefer a
//     worker that recently held that data, because data loading dominates
//     task runtime for most compressors;
//   - dynamic dependency addition: invalidations create new work while
//     the queue is running, so Add is legal at any time;
//   - fault tolerance: worker failures (scriptable through a faultinject
//     plan) requeue the task on a different worker after a capped
//     exponential backoff with deterministic jitter, up to a retry
//     budget; a per-task deadline kills hung attempts so one wedged task
//     cannot hold a worker slot forever; cancelling the run context
//     drains the queue, recording unstarted tasks as cancelled;
//   - checkpoint skip: tasks whose IDs the caller already has results for
//     complete instantly, which is how a restarted bench run resumes.
package queue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// Task is one schedulable unit.
type Task struct {
	// ID uniquely identifies the task (e.g. an opthash key).
	ID string
	// DataKey names the data the task reads; tasks sharing a DataKey
	// are preferentially placed on the same worker.
	DataKey string
	// Deps lists task IDs that must complete successfully first.
	Deps []string
	// Run executes the task. ctx carries the per-attempt deadline and
	// whole-run cancellation; long tasks should honor it. The worker
	// index lets tests observe placement.
	Run func(ctx context.Context, worker int) error
}

// Result records one task's outcome.
type Result struct {
	ID       string
	Worker   int // final worker
	Attempts int
	Err      error
	Skipped  bool // completed from checkpoint, never ran
	TimedOut bool // at least one attempt hit the per-task deadline
}

// Config tunes a Queue.
type Config struct {
	// Workers is the worker-goroutine count (default 4).
	Workers int
	// Retries is how many times a failed task is retried (default 2;
	// pass a negative value for no retries).
	Retries int
	// Completed holds task IDs already checkpointed; they are skipped.
	Completed map[string]bool
	// TaskTimeout bounds each attempt; an attempt that exceeds it is
	// abandoned, counted as a failure, and retried elsewhere (0 = none).
	TaskTimeout time.Duration
	// BackoffBase is the delay before the first retry; attempt n waits
	// min(BackoffBase·2^(n-1), BackoffMax) with deterministic jitter in
	// [delay/2, delay). Default 2ms; negative disables backoff.
	BackoffBase time.Duration
	// BackoffMax caps the backoff (default 250ms).
	BackoffMax time.Duration
	// Inject scripts failures deterministically (tests only); fired as
	// faultinject.OpTask before every attempt.
	Inject *faultinject.Plan
	// Seed drives the backoff jitter deterministically.
	Seed uint64
}

// ErrDependencyFailed marks tasks abandoned because a dependency
// exhausted its retries.
var ErrDependencyFailed = errors.New("queue: dependency failed")

// ErrCancelled marks tasks abandoned because the run context was
// cancelled before they could run (wraps context.Canceled via %w at the
// recording site, so errors.Is works for either).
var ErrCancelled = errors.New("queue: run cancelled")

// Queue schedules tasks over workers. Create with New, add tasks with
// Add (before or during Run), and call Run to drain.
type Queue struct {
	cfg Config

	mu        sync.Mutex
	cond      *sync.Cond // guarded by mu; signals ready/pending changes
	tasks     map[string]*taskState
	ready     []*taskState
	pending   int // tasks not yet in a terminal state
	running   bool
	cancelled bool

	results map[string]*Result

	// locality: worker → set of recent data keys
	workerData   []map[string]bool
	localityHits int

	timedOut int
	backoffs int

	rngState uint64
}

type taskState struct {
	task       Task
	waiting    map[string]bool // unmet deps
	dependents []*taskState
	attempts   int
	lastWorker int
	timedOut   bool
	done       bool
	failed     bool
}

// New builds a queue.
func New(cfg Config) *Queue {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 2 * time.Millisecond
	} else if cfg.BackoffBase < 0 {
		cfg.BackoffBase = 0
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 250 * time.Millisecond
	}
	q := &Queue{
		cfg:        cfg,
		tasks:      make(map[string]*taskState),
		results:    make(map[string]*Result),
		workerData: make([]map[string]bool, cfg.Workers),
		rngState:   cfg.Seed | 1,
	}
	q.cond = sync.NewCond(&q.mu)
	for i := range q.workerData {
		q.workerData[i] = make(map[string]bool)
	}
	return q
}

// Add enqueues a task; legal before and during Run. Duplicate IDs and
// dependencies on unknown tasks are errors (add dependencies first).
func (q *Queue) Add(t Task) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t.ID == "" {
		return errors.New("queue: task needs an ID")
	}
	if _, dup := q.tasks[t.ID]; dup {
		return fmt.Errorf("queue: duplicate task %q", t.ID)
	}
	st := &taskState{task: t, waiting: make(map[string]bool)}
	for _, dep := range t.Deps {
		depState, ok := q.tasks[dep]
		if !ok {
			return fmt.Errorf("queue: task %q depends on unknown task %q", t.ID, dep)
		}
		if depState.failed {
			return fmt.Errorf("queue: task %q depends on failed task %q", t.ID, dep)
		}
		if !depState.done {
			st.waiting[dep] = true
			depState.dependents = append(depState.dependents, st)
		}
	}
	q.tasks[t.ID] = st

	if q.cfg.Completed[t.ID] {
		// checkpointed: complete instantly
		st.done = true
		q.results[t.ID] = &Result{ID: t.ID, Skipped: true, Worker: -1}
		q.releaseDependentsLocked(st)
		q.cond.Broadcast()
		return nil
	}
	q.pending++
	if len(st.waiting) == 0 {
		q.ready = append(q.ready, st)
	}
	q.cond.Broadcast()
	return nil
}

// releaseDependentsLocked unblocks tasks waiting on st.
func (q *Queue) releaseDependentsLocked(st *taskState) {
	for _, dep := range st.dependents {
		delete(dep.waiting, st.task.ID)
		if len(dep.waiting) == 0 && !dep.done && !dep.failed {
			q.ready = append(q.ready, dep)
		}
	}
	st.dependents = nil
}

// failDependentsLocked abandons the transitive dependents of a failed
// task.
func (q *Queue) failDependentsLocked(st *taskState) {
	for _, dep := range st.dependents {
		if dep.failed || dep.done {
			continue
		}
		dep.failed = true
		q.pending--
		q.results[dep.task.ID] = &Result{ID: dep.task.ID, Err: ErrDependencyFailed, Worker: -1}
		q.failDependentsLocked(dep)
	}
	st.dependents = nil
}

// pickLocked chooses a ready task for the given worker: first preference
// is a task whose DataKey the worker already holds; second, a task whose
// DataKey no other worker holds; else FIFO. For retries, a task avoids
// its previous worker when another is available.
func (q *Queue) pickLocked(worker int) *taskState {
	if len(q.ready) == 0 {
		return nil
	}
	bestIdx := -1
	for i, st := range q.ready {
		if st.attempts > 0 && st.lastWorker == worker && len(q.ready) > 1 && q.cfg.Workers > 1 {
			continue // prefer a different worker for retries
		}
		if st.task.DataKey != "" && q.workerData[worker][st.task.DataKey] {
			bestIdx = i
			q.localityHits++
			break // perfect locality
		}
		if bestIdx < 0 {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		bestIdx = 0
	}
	st := q.ready[bestIdx]
	q.ready = append(q.ready[:bestIdx], q.ready[bestIdx+1:]...)
	return st
}

// backoffLocked computes the capped exponential retry delay for the
// given attempt count, with deterministic jitter drawn from the seeded
// xorshift state: delay ∈ [base·2^(n-1)/2, base·2^(n-1)), capped.
func (q *Queue) backoffLocked(attempts int) time.Duration {
	if q.cfg.BackoffBase <= 0 {
		return 0
	}
	d := q.cfg.BackoffBase
	for i := 1; i < attempts && d < q.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > q.cfg.BackoffMax {
		d = q.cfg.BackoffMax
	}
	q.rngState ^= q.rngState << 13
	q.rngState ^= q.rngState >> 7
	q.rngState ^= q.rngState << 17
	half := d / 2
	if half > 0 {
		d = half + time.Duration(q.rngState%uint64(half))
	}
	return d
}

// requeueLocked schedules st for retry after backoff. The task stays
// pending (so the queue does not drain), becoming ready when the timer
// fires.
func (q *Queue) requeueLocked(st *taskState) {
	delay := q.backoffLocked(st.attempts)
	if delay <= 0 {
		q.ready = append(q.ready, st)
		return
	}
	q.backoffs++
	time.AfterFunc(delay, func() {
		q.mu.Lock()
		if !st.done && !st.failed && !q.cancelled {
			q.ready = append(q.ready, st)
		}
		q.mu.Unlock()
		q.cond.Broadcast()
	})
}

// cancelPendingLocked records every non-terminal task as cancelled. Tasks
// with an attempt in flight are finalized by their worker instead.
func (q *Queue) cancelPendingLocked(ctx context.Context, inFlight map[*taskState]bool) {
	for _, st := range q.tasks {
		if st.done || st.failed || inFlight[st] {
			continue
		}
		st.failed = true
		q.pending--
		q.results[st.task.ID] = &Result{
			ID: st.task.ID, Worker: -1, Attempts: st.attempts,
			Err: fmt.Errorf("%w: %w", ErrCancelled, context.Cause(ctx)),
		}
	}
}

// Run drains the queue under ctx and returns all results keyed by task
// ID. Cancelling ctx stops scheduling: running attempts get their
// context cancelled and are recorded as cancelled (ErrCancelled, like
// unstarted tasks) unless they fail with an unrelated error of their
// own. Run may be called once.
func (q *Queue) Run(ctx context.Context) map[string]*Result {
	if ctx == nil {
		//lint:ignore pressiovet/ctxflow nil-ctx compatibility guard, not a detachment: callers that pass a ctx keep full cancellation flow
		ctx = context.Background()
	}
	q.mu.Lock()
	if q.running {
		q.mu.Unlock()
		panic("queue: Run called twice")
	}
	q.running = true
	q.mu.Unlock()

	// in-flight tracking lets cancellation distinguish tasks a worker
	// will finalize from tasks nobody owns
	inFlight := make(map[*taskState]bool)

	// wake sleeping workers when the run context dies
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			q.mu.Lock()
			q.cancelled = true
			q.cancelPendingLocked(ctx, inFlight)
			q.mu.Unlock()
			q.cond.Broadcast()
		case <-stopWatch:
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < q.cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			q.mu.Lock()
			for {
				if q.cancelled || q.pending == 0 {
					q.mu.Unlock()
					q.cond.Broadcast()
					return
				}
				st := q.pickLocked(worker)
				if st == nil {
					// Wait re-checks under the same lock, so a wakeup
					// between pick and park cannot be lost.
					q.cond.Wait()
					continue
				}
				st.attempts++
				st.lastWorker = worker
				inFlight[st] = true
				decision := q.cfg.Inject.Fire(faultinject.OpTask, worker, st.task.ID)
				q.mu.Unlock()

				err := q.attempt(ctx, st, worker, decision)

				q.mu.Lock()
				delete(inFlight, st)
				if st.failed {
					// cancelled and finalized elsewhere; drop the result
					continue
				}
				if err == nil {
					st.done = true
					q.pending--
					if st.task.DataKey != "" {
						q.workerData[worker][st.task.DataKey] = true
					}
					q.results[st.task.ID] = &Result{
						ID: st.task.ID, Worker: worker, Attempts: st.attempts,
						TimedOut: st.timedOut,
					}
					q.releaseDependentsLocked(st)
				} else if st.attempts <= q.cfg.Retries && !q.cancelled && ctx.Err() == nil {
					q.requeueLocked(st)
				} else {
					if ctx.Err() != nil && errors.Is(err, context.Cause(ctx)) {
						// the attempt died of run cancellation, not its own
						// fault; record it like every other cancelled task
						err = fmt.Errorf("%w: %w", ErrCancelled, err)
					}
					st.failed = true
					q.pending--
					q.results[st.task.ID] = &Result{
						ID: st.task.ID, Worker: worker, Attempts: st.attempts, Err: err,
						TimedOut: st.timedOut,
					}
					q.failDependentsLocked(st)
				}
				q.cond.Broadcast()
			}
		}(w)
	}
	wg.Wait()
	close(stopWatch)

	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]*Result, len(q.results))
	for k, v := range q.results {
		out[k] = v
	}
	return out
}

// attempt runs one try of st on worker, honoring the injected decision
// and the per-task deadline. A timed-out attempt is abandoned: its
// goroutine keeps running until the task function notices ctx, but the
// worker slot moves on immediately.
func (q *Queue) attempt(ctx context.Context, st *taskState, worker int, decision faultinject.Decision) error {
	if decision.Delay > 0 {
		select {
		case <-time.After(decision.Delay):
		case <-ctx.Done():
		}
	}
	if decision.Err != nil {
		return decision.Err
	}
	// don't start new work after cancellation, even if the watcher has
	// not marked the queue cancelled yet
	if err := context.Cause(ctx); err != nil {
		return fmt.Errorf("queue: task %q: %w", st.task.ID, err)
	}
	if st.task.Run == nil {
		return nil
	}
	attemptCtx := ctx
	var cancel context.CancelFunc
	if q.cfg.TaskTimeout > 0 {
		attemptCtx, cancel = context.WithTimeout(ctx, q.cfg.TaskTimeout)
		defer cancel()
	}
	done := make(chan error, 1)
	go func() { done <- st.task.Run(attemptCtx, worker) }()
	select {
	case err := <-done:
		return err
	case <-attemptCtx.Done():
		err := attemptCtx.Err()
		if errors.Is(err, context.DeadlineExceeded) {
			q.mu.Lock()
			st.timedOut = true
			q.timedOut++
			q.mu.Unlock()
			return fmt.Errorf("queue: task %q attempt %d on worker %d: %w",
				st.task.ID, st.attempts, worker, err)
		}
		return fmt.Errorf("queue: task %q: %w", st.task.ID, err)
	}
}

// Stats summarizes a finished run for observability: how often the
// locality scheduler placed a task on a worker already holding its data,
// and how much retrying the fault tolerance absorbed.
type Stats struct {
	Tasks         int
	Skipped       int // checkpoint hits
	Failed        int
	Cancelled     int // abandoned by run-context cancellation
	Retried       int // tasks needing more than one attempt
	TimedOut      int // attempts killed by the per-task deadline
	Backoffs      int // retries that waited out a backoff delay
	LocalityHits  int // placements onto a worker already holding the DataKey
	TotalAttempts int
}

// Stats reports run statistics; call after Run returns.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	var s Stats
	for _, r := range q.results {
		s.Tasks++
		s.TotalAttempts += r.Attempts
		if r.Skipped {
			s.Skipped++
			continue
		}
		if r.Err != nil {
			s.Failed++
			if errors.Is(r.Err, ErrCancelled) {
				s.Cancelled++
			}
		}
		if r.Attempts > 1 {
			s.Retried++
		}
	}
	s.TimedOut = q.timedOut
	s.Backoffs = q.backoffs
	s.LocalityHits = q.localityHits
	return s
}
