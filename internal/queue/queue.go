// Package queue is the distributed task queue of predict-bench — the
// substitution for the MPI-based LibDistributed queue the paper builds on
// (§4.3). Workers are goroutines standing in for ranks; the scheduler
// keeps the semantics the paper needs and most workflow systems lack:
//
//   - data-locality-aware placement: tasks tagged with a DataKey prefer a
//     worker that recently held that data, because data loading dominates
//     task runtime for most compressors;
//   - dynamic dependency addition: invalidations create new work while
//     the queue is running, so Add is legal at any time;
//   - fault tolerance: worker failures (injectable for tests) requeue the
//     task, preferring a different worker, up to a retry budget;
//   - checkpoint skip: tasks whose IDs the caller already has results for
//     complete instantly, which is how a restarted bench run resumes.
package queue

import (
	"errors"
	"fmt"
	"sync"
)

// Task is one schedulable unit.
type Task struct {
	// ID uniquely identifies the task (e.g. an opthash key).
	ID string
	// DataKey names the data the task reads; tasks sharing a DataKey
	// are preferentially placed on the same worker.
	DataKey string
	// Deps lists task IDs that must complete successfully first.
	Deps []string
	// Run executes the task. It receives the worker index so tests can
	// observe placement.
	Run func(worker int) error
}

// Result records one task's outcome.
type Result struct {
	ID       string
	Worker   int // final worker
	Attempts int
	Err      error
	Skipped  bool // completed from checkpoint, never ran
}

// Config tunes a Queue.
type Config struct {
	// Workers is the worker-goroutine count (default 4).
	Workers int
	// Retries is how many times a failed task is retried (default 2;
	// pass a negative value for no retries).
	Retries int
	// Completed holds task IDs already checkpointed; they are skipped.
	Completed map[string]bool
	// FailureRate injects a simulated worker fault with this probability
	// on each attempt (tests only; default 0).
	FailureRate float64
	// Seed drives the failure injector deterministically.
	Seed uint64
}

// ErrDependencyFailed marks tasks abandoned because a dependency
// exhausted its retries.
var ErrDependencyFailed = errors.New("queue: dependency failed")

// Queue schedules tasks over workers. Create with New, add tasks with
// Add (before or during Run), and call Run to drain.
type Queue struct {
	cfg Config

	mu        sync.Mutex
	tasks     map[string]*taskState
	ready     []*taskState
	pending   int // tasks not yet in a terminal state
	running   bool
	workPivot chan struct{} // signals dispatcher re-evaluation

	results map[string]*Result

	// locality: worker → set of recent data keys
	workerData   []map[string]bool
	localityHits int

	rngState uint64
}

type taskState struct {
	task       Task
	waiting    map[string]bool // unmet deps
	dependents []*taskState
	attempts   int
	lastWorker int
	done       bool
	failed     bool
}

// New builds a queue.
func New(cfg Config) *Queue {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	q := &Queue{
		cfg:        cfg,
		tasks:      make(map[string]*taskState),
		results:    make(map[string]*Result),
		workerData: make([]map[string]bool, cfg.Workers),
		workPivot:  make(chan struct{}, cfg.Workers),
		rngState:   cfg.Seed | 1,
	}
	for i := range q.workerData {
		q.workerData[i] = make(map[string]bool)
	}
	return q
}

// Add enqueues a task; legal before and during Run. Duplicate IDs and
// dependencies on unknown tasks are errors (add dependencies first).
func (q *Queue) Add(t Task) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t.ID == "" {
		return errors.New("queue: task needs an ID")
	}
	if _, dup := q.tasks[t.ID]; dup {
		return fmt.Errorf("queue: duplicate task %q", t.ID)
	}
	st := &taskState{task: t, waiting: make(map[string]bool)}
	for _, dep := range t.Deps {
		depState, ok := q.tasks[dep]
		if !ok {
			return fmt.Errorf("queue: task %q depends on unknown task %q", t.ID, dep)
		}
		if depState.failed {
			return fmt.Errorf("queue: task %q depends on failed task %q", t.ID, dep)
		}
		if !depState.done {
			st.waiting[dep] = true
			depState.dependents = append(depState.dependents, st)
		}
	}
	q.tasks[t.ID] = st

	if q.cfg.Completed[t.ID] {
		// checkpointed: complete instantly
		st.done = true
		q.results[t.ID] = &Result{ID: t.ID, Skipped: true, Worker: -1}
		q.releaseDependentsLocked(st)
		return nil
	}
	q.pending++
	if len(st.waiting) == 0 {
		q.ready = append(q.ready, st)
	}
	q.poke()
	return nil
}

func (q *Queue) poke() {
	select {
	case q.workPivot <- struct{}{}:
	default:
	}
}

// releaseDependentsLocked unblocks tasks waiting on st.
func (q *Queue) releaseDependentsLocked(st *taskState) {
	for _, dep := range st.dependents {
		delete(dep.waiting, st.task.ID)
		if len(dep.waiting) == 0 && !dep.done && !dep.failed {
			q.ready = append(q.ready, dep)
		}
	}
	st.dependents = nil
}

// failDependentsLocked abandons the transitive dependents of a failed
// task.
func (q *Queue) failDependentsLocked(st *taskState) {
	for _, dep := range st.dependents {
		if dep.failed || dep.done {
			continue
		}
		dep.failed = true
		q.pending--
		q.results[dep.task.ID] = &Result{ID: dep.task.ID, Err: ErrDependencyFailed, Worker: -1}
		q.failDependentsLocked(dep)
	}
	st.dependents = nil
}

// pickLocked chooses a ready task for the given worker: first preference
// is a task whose DataKey the worker already holds; second, a task whose
// DataKey no other worker holds; else FIFO. For retries, a task avoids
// its previous worker when another is available.
func (q *Queue) pickLocked(worker int) *taskState {
	if len(q.ready) == 0 {
		return nil
	}
	bestIdx := -1
	for i, st := range q.ready {
		if st.attempts > 0 && st.lastWorker == worker && len(q.ready) > 1 && q.cfg.Workers > 1 {
			continue // prefer a different worker for retries
		}
		if st.task.DataKey != "" && q.workerData[worker][st.task.DataKey] {
			bestIdx = i
			q.localityHits++
			break // perfect locality
		}
		if bestIdx < 0 {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		bestIdx = 0
	}
	st := q.ready[bestIdx]
	q.ready = append(q.ready[:bestIdx], q.ready[bestIdx+1:]...)
	return st
}

func (q *Queue) injectFailure() bool {
	if q.cfg.FailureRate <= 0 {
		return false
	}
	q.rngState ^= q.rngState << 13
	q.rngState ^= q.rngState >> 7
	q.rngState ^= q.rngState << 17
	return float64(q.rngState%1e6)/1e6 < q.cfg.FailureRate
}

// Run drains the queue and returns all results keyed by task ID. It may
// be called once.
func (q *Queue) Run() map[string]*Result {
	q.mu.Lock()
	if q.running {
		q.mu.Unlock()
		panic("queue: Run called twice")
	}
	q.running = true
	q.mu.Unlock()

	var wg sync.WaitGroup
	work := make(chan struct{}) // closed to stop workers
	var closeOnce sync.Once
	stop := func() { closeOnce.Do(func() { close(work) }) }

	for w := 0; w < q.cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				q.mu.Lock()
				st := q.pickLocked(worker)
				if st == nil {
					if q.pending == 0 {
						q.mu.Unlock()
						stop()
						return
					}
					q.mu.Unlock()
					// wait for new work or shutdown
					select {
					case <-q.workPivot:
						continue
					case <-work:
						return
					}
				}
				st.attempts++
				st.lastWorker = worker
				inject := q.injectFailure()
				q.mu.Unlock()

				var err error
				if inject {
					err = fmt.Errorf("queue: injected fault on worker %d", worker)
				} else if st.task.Run != nil {
					err = st.task.Run(worker)
				}

				q.mu.Lock()
				if err == nil {
					st.done = true
					q.pending--
					if st.task.DataKey != "" {
						q.workerData[worker][st.task.DataKey] = true
					}
					q.results[st.task.ID] = &Result{
						ID: st.task.ID, Worker: worker, Attempts: st.attempts,
					}
					q.releaseDependentsLocked(st)
				} else if st.attempts <= q.cfg.Retries {
					q.ready = append(q.ready, st) // requeue
				} else {
					st.failed = true
					q.pending--
					q.results[st.task.ID] = &Result{
						ID: st.task.ID, Worker: worker, Attempts: st.attempts, Err: err,
					}
					q.failDependentsLocked(st)
				}
				drained := q.pending == 0
				q.mu.Unlock()
				// wake all sleepers so they can observe completion or
				// pick up released dependents
				for i := 0; i < q.cfg.Workers; i++ {
					q.poke()
				}
				if drained {
					stop()
					return
				}
			}
		}(w)
	}
	wg.Wait()

	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]*Result, len(q.results))
	for k, v := range q.results {
		out[k] = v
	}
	return out
}

// Stats summarizes a finished run for observability: how often the
// locality scheduler placed a task on a worker already holding its data,
// and how much retrying the fault tolerance absorbed.
type Stats struct {
	Tasks         int
	Skipped       int // checkpoint hits
	Failed        int
	Retried       int // tasks needing more than one attempt
	LocalityHits  int // placements onto a worker already holding the DataKey
	TotalAttempts int
}

// Stats reports run statistics; call after Run returns.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	var s Stats
	for _, r := range q.results {
		s.Tasks++
		s.TotalAttempts += r.Attempts
		if r.Skipped {
			s.Skipped++
			continue
		}
		if r.Err != nil {
			s.Failed++
		}
		if r.Attempts > 1 {
			s.Retried++
		}
	}
	s.LocalityHits = q.localityHits
	return s
}
