package repro

// Kernel microbenchmarks backing the BENCH_kernels.json regression gate
// (make bench-baseline / make bench-check). Each compressor benchmark has a
// serial variant (pressio:nthreads=1) and a parallel variant (nthreads=0,
// i.e. all cores), so the baseline records both the single-thread cost and
// the scaling headroom; the gate fails when either regresses by more than
// 10% in ns/op or allocs/op. The metrics benchmarks pin the fused
// single-pass feature extraction against the per-metric multi-pass chain
// it replaced.

import (
	"testing"

	"repro/internal/huffman"
	"repro/internal/hurricane"
	"repro/internal/pressio"
	"repro/internal/stats"
)

func kernelOpts(b *testing.B, abs float64, nthreads int) pressio.Options {
	b.Helper()
	o := pressio.Options{}
	o.Set(pressio.OptAbs, abs)
	o.Set(pressio.OptNThreads, int64(nthreads))
	return o
}

func benchmarkKernelCompress(b *testing.B, name string, nthreads int) {
	data := benchField(b, "TC", 24)
	comp, err := pressio.GetCompressor(name)
	if err != nil {
		b.Fatal(err)
	}
	if err := comp.SetOptions(kernelOpts(b, 1e-4, nthreads)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(data.ByteSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.Compress(data); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkKernelDecompress(b *testing.B, name string, nthreads int) {
	data := benchField(b, "TC", 24)
	comp, err := pressio.GetCompressor(name)
	if err != nil {
		b.Fatal(err)
	}
	if err := comp.SetOptions(kernelOpts(b, 1e-4, nthreads)); err != nil {
		b.Fatal(err)
	}
	compressed, err := comp.Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	out := pressio.New(data.DType(), data.Dims()...)
	b.SetBytes(int64(data.ByteSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := comp.Decompress(compressed, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelSZ3Compress(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchmarkKernelCompress(b, "sz3", 1) })
	b.Run("parallel", func(b *testing.B) { benchmarkKernelCompress(b, "sz3", 0) })
}

func BenchmarkKernelSZ3Decompress(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchmarkKernelDecompress(b, "sz3", 1) })
	b.Run("parallel", func(b *testing.B) { benchmarkKernelDecompress(b, "sz3", 0) })
}

func BenchmarkKernelZFPCompress(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchmarkKernelCompress(b, "zfp", 1) })
	b.Run("parallel", func(b *testing.B) { benchmarkKernelCompress(b, "zfp", 0) })
}

func BenchmarkKernelZFPDecompress(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchmarkKernelDecompress(b, "zfp", 1) })
	b.Run("parallel", func(b *testing.B) { benchmarkKernelDecompress(b, "zfp", 0) })
}

func BenchmarkKernelSZXCompress(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchmarkKernelCompress(b, "szx", 1) })
	b.Run("parallel", func(b *testing.B) { benchmarkKernelCompress(b, "szx", 0) })
}

func BenchmarkKernelSZXDecompress(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchmarkKernelDecompress(b, "szx", 1) })
	b.Run("parallel", func(b *testing.B) { benchmarkKernelDecompress(b, "szx", 0) })
}

// BenchmarkKernelHuffman pins the entropy-coding stage alone: the code
// stream below matches the size and skew of an sz3 quantizer output.
func BenchmarkKernelHuffman(b *testing.B) {
	data := benchField(b, "TC", 24)
	n := data.Len()
	codes := make([]int32, n)
	state := uint64(1)
	for i := range codes {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		// geometric-ish code distribution centred at zero
		v := int32(state%7) - 3
		if state%64 == 0 {
			v = int32(state%1024) - 512
		}
		codes[i] = v
	}
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := huffman.Encode(codes); err != nil {
				b.Fatal(err)
			}
		}
	})
	coded, err := huffman.Encode(codes)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := huffman.Decode(coded); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKernelHurricaneSynth pins the cost of synthesizing one
// hurricane field at the benchmark grid. predictd pays this on every
// predict miss that carries a DataRef (the server materializes the field
// before feature extraction), so the capacity model in internal/capacity
// composes this measurement into its predicted per-request cost.
func BenchmarkKernelHurricaneSynth(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := hurricane.Field("TC", 24, benchDims)
		if err != nil {
			b.Fatal(err)
		}
		if d.Len() == 0 {
			b.Fatal("empty field")
		}
	}
}

// BenchmarkKernelFusedSummary pins the single-pass fused extractor on its
// own: one parallel sweep producing min/max/mean/std/sparsity/histogram.
// Touch invalidates the per-buffer cache each iteration so every pass is
// a real recomputation, not a cache hit.
func BenchmarkKernelFusedSummary(b *testing.B) {
	data := benchField(b, "TC", 24)
	b.SetBytes(int64(data.ByteSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data.Touch()
		if s := stats.SummaryOf(data, 4096, 1); s.N != data.Len() {
			b.Fatalf("summary covered %d of %d elements", s.N, data.Len())
		}
	}
}

// BenchmarkKernelMetricsChain runs the Stat+Entropy+QuantizedEntropy
// metric chain the way predictd's feature synthesis and the bench metric
// stage do. Before the fused summary each metric re-materialized the input
// as a fresh []float64 and did its own full passes; the chain now shares
// one per-buffer summary, which this benchmark's ns/op and allocs/op pin.
func BenchmarkKernelMetricsChain(b *testing.B) {
	data := benchField(b, "TC", 24)
	names := []string{"stat", "entropy", "quantized_entropy"}
	chain := make([]pressio.Metric, 0, len(names))
	for _, name := range names {
		m, err := pressio.GetMetric(name)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.SetOptions(kernelOpts(b, 1e-4, 1)); err != nil {
			b.Fatal(err)
		}
		chain = append(chain, m)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range chain {
			m.BeginCompress(data)
			if len(m.Results()) == 0 {
				b.Fatal("empty results")
			}
		}
	}
}

// BenchmarkKernelMetricsLegacy measures the pre-fusion cost the chain
// used to pay — one float64 materialization plus independent full passes
// per metric — kept as the reference the fused path is compared against
// in BENCH_kernels.json.
func BenchmarkKernelMetricsLegacy(b *testing.B) {
	data := benchField(b, "TC", 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// stat: copy + range + mean + std (two passes) + sparsity
		xs := legacyToFloat64(data)
		lo, hi := data.Range()
		_ = stats.Mean(xs)
		_ = stats.Std(xs)
		_ = stats.Sparsity(xs, 0)
		// entropy: copy + range + histogram
		xs = legacyToFloat64(data)
		h := stats.Histogram(xs, lo, hi, 4096)
		_ = stats.EntropyFromCounts(h)
		// quantized entropy: copy + quantize-count pass
		xs = legacyToFloat64(data)
		_ = stats.QuantizedEntropy(xs, 1e-4)
	}
}

// legacyToFloat64 reproduces the original per-metric conversion: always a
// fresh copy for non-float64 buffers.
func legacyToFloat64(d *pressio.Data) []float64 {
	if d.DType() == pressio.DTypeFloat64 {
		return d.Float64()
	}
	out := make([]float64, d.Len())
	for i := range out {
		out[i] = d.At(i)
	}
	return out
}
