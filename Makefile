GO ?= go
PRESSIOVET := bin/pressiovet

.PHONY: build test check lint fmt-check serve-check crash-check cluster-check scenario-check scenario-baseline stress bench bench-baseline bench-check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full verification gate: formatting, standard vet (with the
# extra unreachable/copylocks/lostcancel passes spelled out so a vet
# default change can't silently drop them), the pressiovet suite, build,
# and the complete test suite under the race detector. The default stays
# `-race -short`: -race is what actually exercises the sync.Pool and
# queue invariants the linters guard statically, and -short keeps the
# gate fast enough to run on every change by skipping the long queue
# stress test and the model-fitting serve tests (run `make stress` and
# `make serve-check` to include them).
check: fmt-check
	$(GO) vet ./...
	$(GO) vet -unreachable -copylocks -lostcancel ./...
	$(MAKE) lint
	$(GO) build ./...
	$(GO) test -race -short ./...
	$(MAKE) crash-check
	$(MAKE) cluster-check
	$(MAKE) scenario-check
ifdef BENCH
	$(MAKE) bench-check
endif

# lint runs the pressiovet analyzers (DESIGN.md §11) over the whole tree
# via the `go vet -vettool` unitchecker protocol. Idempotent: rebuilds
# the tool from source each run; exits non-zero on any finding.
lint:
	$(GO) build -o $(PRESSIOVET) ./cmd/pressiovet
	$(GO) vet -vettool=$(abspath $(PRESSIOVET)) ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# serve-check gates the serving subsystem: vet + the full internal/serve
# suite (end-to-end fit/predict/invalidate, singleflight, backpressure,
# loadgen soak) and the daemon build, all under the race detector.
serve-check:
	$(GO) vet ./internal/serve/ ./cmd/predictd/
	$(GO) build -o /dev/null ./cmd/predictd/
	$(GO) test -race ./internal/serve/

# crash-check runs the kill-restart recovery harness (DESIGN.md §12)
# under the race detector: every cataloged crash point, the torn compact
# rename, the fixed-seed randomized sweep, and the journal-loss negative
# control. Plans are seeded, so a failure reproduces from the log alone.
crash-check:
	$(GO) test -race -run 'TestKillRestart|TestCrashDuringCompactRename|TestCrashHarnessCatchesJournalLoss' ./internal/serve/ -v

# cluster-check runs the multi-process replicated-cluster harness
# (DESIGN.md §13) under the race detector: a real 3-node predictd cluster
# plus router as separate OS processes, with the partition owner killed
# at seeded fault points and at randomized offsets. Asserts no acked fit
# is lost, no divergent model publish, and graceful router degradation.
cluster-check:
	$(GO) test -race -run TestCluster ./internal/cluster/ -v

# scenario-check runs the declarative macro-benchmark harness (DESIGN.md
# §14) under the race detector: each committed scenario deploys a real
# 2-node predictd cluster + router, drives the seeded traffic mix, and
# gates on SLOs, the committed BENCH_system.json baseline (scenario-
# declared tolerances), and capacity-model conformance. Seeded, so the
# offered request schedule is identical on every run. TestScenarioBatch
# additionally gates the batch hot path's ≥10x prediction-QPS speedup
# over its single-request twin (DESIGN.md §15).
scenario-check:
	$(GO) test -race -run 'TestScenario(Smoke|Batch)' ./internal/scenario/ -v

# scenario-baseline re-runs a scenario and rewrites its entry in the
# committed BENCH_system.json. Run on a quiet machine and commit.
# Override the scenario with SCENARIO=scenarios/full.json.
SCENARIO ?= scenarios/smoke.json
scenario-baseline:
	$(GO) run ./cmd/scenariobench -scenario $(SCENARIO) -baseline

stress:
	$(GO) test -race -run TestStress ./internal/queue/ -v

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-baseline re-measures the kernel microbenchmarks and rewrites the
# committed BENCH_kernels.json. Run it only on a quiet machine after a
# deliberate performance change, and commit the result.
bench-baseline:
	$(GO) run ./cmd/benchgate -baseline

# bench-check re-runs the kernel benchmarks and fails if ns/op or
# allocs/op regressed more than 10% against BENCH_kernels.json. It is
# wired into `make check` behind BENCH=1 (benchmarks need a quiet
# machine, so the default check stays deterministic).
bench-check:
	$(GO) run ./cmd/benchgate -check

clean:
	$(GO) clean ./...
