GO ?= go

.PHONY: build test check stress bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full verification gate: vet, build, and the complete
# test suite under the race detector. -short skips the long queue
# stress test; run `make stress` to include it.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race -short ./...

stress:
	$(GO) test -race -run TestStress ./internal/queue/ -v

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

clean:
	$(GO) clean ./...
