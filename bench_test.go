package repro

// Benchmark harness: one benchmark per table, figure, and §6 claim of the
// paper. Absolute numbers differ from the paper's testbed (reimplemented
// compressors, scaled synthetic grid); the benchmarks preserve the
// *relationships* the paper reports — see EXPERIMENTS.md.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The full-scale Table 2 is produced by cmd/predict-bench; the
// BenchmarkTable2EndToEnd benchmark exercises the same pipeline on a
// reduced spec so it completes in benchmark time.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	_ "repro/internal/compressor/lossless"
	_ "repro/internal/compressor/sz3"
	_ "repro/internal/compressor/szx"
	_ "repro/internal/compressor/zfp"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hurricane"
	_ "repro/internal/metrics"
	"repro/internal/predictors"
	"repro/internal/pressio"
)

// benchDims is the grid used by the per-stage benchmarks (the full
// default grid; table-scale runs live in cmd/predict-bench).
var benchDims = hurricane.DefaultDims

func benchField(b *testing.B, name string, step int) *pressio.Data {
	b.Helper()
	d, err := hurricane.Field(name, step, benchDims)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func withAbs(b *testing.B, abs float64) pressio.Options {
	b.Helper()
	o := pressio.Options{}
	o.Set(pressio.OptAbs, abs)
	return o
}

// --- Table 1: taxonomy regeneration -----------------------------------

func BenchmarkTable1Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := bench.Table1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- §6 baseline: compressor runtimes (Table 2 baseline rows) ----------

func benchmarkCompress(b *testing.B, compressor string) {
	data := benchField(b, "TC", 24)
	comp, err := pressio.GetCompressor(compressor)
	if err != nil {
		b.Fatal(err)
	}
	comp.SetOptions(withAbs(b, 1e-4))
	b.SetBytes(int64(data.ByteSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.Compress(data); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkDecompress(b *testing.B, compressor string) {
	data := benchField(b, "TC", 24)
	comp, err := pressio.GetCompressor(compressor)
	if err != nil {
		b.Fatal(err)
	}
	comp.SetOptions(withAbs(b, 1e-4))
	compressed, err := comp.Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	out := pressio.New(data.DType(), data.Dims()...)
	b.SetBytes(int64(data.ByteSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := comp.Decompress(compressed, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineSZ3Compress(b *testing.B)   { benchmarkCompress(b, "sz3") }
func BenchmarkBaselineSZ3Decompress(b *testing.B) { benchmarkDecompress(b, "sz3") }
func BenchmarkBaselineZFPCompress(b *testing.B)   { benchmarkCompress(b, "zfp") }
func BenchmarkBaselineZFPDecompress(b *testing.B) { benchmarkDecompress(b, "zfp") }

// --- Table 2 scheme stages: error-dependent / error-agnostic cost ------

func benchmarkSchemeStage(b *testing.B, schemeName, compressor string) {
	session, err := core.NewSession(schemeName, compressor)
	if err != nil {
		b.Fatal(err)
	}
	opts := withAbs(b, 1e-4)
	opts.Set(predictors.OptTaoCompressor, compressor)
	opts.Set(predictors.OptKhanCompressor, compressor)
	if err := session.SetOptions(opts); err != nil {
		b.Fatal(err)
	}
	data := benchField(b, "TC", 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		session.InvalidateAll()
		if _, err := session.Evaluate(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2KhanSZ3(b *testing.B)   { benchmarkSchemeStage(b, "khan2023", "sz3") }
func BenchmarkTable2KhanZFP(b *testing.B)   { benchmarkSchemeStage(b, "khan2023", "zfp") }
func BenchmarkTable2JinSZ3(b *testing.B)    { benchmarkSchemeStage(b, "jin2022", "sz3") }
func BenchmarkTable2RahmanSZ3(b *testing.B) { benchmarkSchemeStage(b, "rahman2023", "sz3") }
func BenchmarkTable2RahmanZFP(b *testing.B) { benchmarkSchemeStage(b, "rahman2023", "zfp") }
func BenchmarkTable2TaoSZ3(b *testing.B)    { benchmarkSchemeStage(b, "tao2019", "sz3") }
func BenchmarkTable2KrasowskaSZ3(b *testing.B) {
	benchmarkSchemeStage(b, "krasowska2021", "sz3")
}
func BenchmarkTable2GanguliSZ3(b *testing.B) { benchmarkSchemeStage(b, "ganguli2023", "sz3") }

// BenchmarkTable2UnderwoodSZ3 is the expensive-SVD scheme (§6 ablation).
func BenchmarkTable2UnderwoodSZ3(b *testing.B) {
	benchmarkSchemeStage(b, "underwood2023", "sz3")
}

// --- Table 2 end to end: the full pipeline on a reduced spec -----------

func BenchmarkTable2EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := &bench.Spec{
			Fields:  []string{"P", "CLOUD", "U", "QRAIN"},
			Steps:   3,
			Dims:    []int{8, 16, 16},
			Folds:   3,
			Workers: 4,
			Seed:    int64(i + 1),
		}
		report, err := bench.Run(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(report.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// --- §6 ablation: Underwood's SVD precompute vs its cheap stage --------

func BenchmarkUnderwoodSVDAblation(b *testing.B) {
	data := benchField(b, "U", 24)
	svd, err := pressio.GetMetric("svd_trunc")
	if err != nil {
		b.Fatal(err)
	}
	qent, err := pressio.GetMetric("quantized_entropy")
	if err != nil {
		b.Fatal(err)
	}
	qent.SetOptions(withAbs(b, 1e-4))
	b.Run("svd_truncation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svd.BeginCompress(data)
		}
	})
	b.Run("quantized_entropy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qent.BeginCompress(data)
		}
	})
}

// --- §6 ablation: Jin's iterator overhead ------------------------------

func BenchmarkJinIteratorAblation(b *testing.B) {
	data := benchField(b, "TC", 24)
	run := func(fast bool) func(*testing.B) {
		return func(b *testing.B) {
			m, err := pressio.GetMetric("jin_model")
			if err != nil {
				b.Fatal(err)
			}
			opts := withAbs(b, 1e-4)
			opts.Set(predictors.OptJinFastIterator, fast)
			m.SetOptions(opts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.BeginCompress(data)
			}
		}
	}
	b.Run("naive_iterator", run(false))
	b.Run("fast_iterator", run(true))
}

// --- Figure 2: loader pipeline, cold vs cache tiers ---------------------

func BenchmarkFigure2Pipeline(b *testing.B) {
	work := b.TempDir()
	dataDir := filepath.Join(work, "data")
	os.MkdirAll(dataDir, 0o755)
	src, err := dataset.NewSynthetic([]string{"P", "U", "CLOUD", "W"}, 2, []int{8, 32, 32})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < src.Len(); i++ {
		m, _ := src.LoadMetadata(i)
		d, _ := src.LoadData(i)
		if _, err := dataset.WriteRaw(dataDir, m.Name, d); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("cold_folder_load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			folder, err := dataset.NewFolder(dataDir, "*.f32")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := folder.LoadDataAll(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("memory_cache_hit", func(b *testing.B) {
		folder, _ := dataset.NewFolder(dataDir, "*.f32")
		cache, err := dataset.NewCache(folder, 64<<20, "")
		if err != nil {
			b.Fatal(err)
		}
		cache.LoadDataAll() // warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.LoadDataAll(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("disk_cache_hit", func(b *testing.B) {
		spill := filepath.Join(work, "spill")
		folder, _ := dataset.NewFolder(dataDir, "*.f32")
		warm, err := dataset.NewCache(folder, 0, spill)
		if err != nil {
			b.Fatal(err)
		}
		warm.LoadDataAll() // populate the disk tier
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cold, err := dataset.NewCache(folder, 0, spill)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cold.LoadDataAll(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figure 4: the per-prediction inference path -----------------------

func BenchmarkFigure4InferencePath(b *testing.B) {
	session, err := core.NewSession("jin2022", "sz3")
	if err != nil {
		b.Fatal(err)
	}
	if err := session.SetOptions(withAbs(b, 1e-4)); err != nil {
		b.Fatal(err)
	}
	data := benchField(b, "QVAPOR", 24)
	b.Run("cold_prediction", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			session.InvalidateAll()
			if _, _, err := session.Predict(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached_prediction", func(b *testing.B) {
		if _, _, err := session.Predict(data); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := session.Predict(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}
