// Command schemes introspects the prediction-scheme registry: it lists
// every registered scheme with its metrics, features, and supported
// compressors, and regenerates the paper's Table 1 taxonomy.
//
// Usage:
//
//	schemes            # detailed registry listing
//	schemes -table1    # the Table-1 reproduction
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/bench"
	_ "repro/internal/compressor/lossless"
	_ "repro/internal/compressor/sz3"
	_ "repro/internal/compressor/szx"
	_ "repro/internal/compressor/zfp"
	"repro/internal/core"
	_ "repro/internal/metrics"
	_ "repro/internal/predictors"
	"repro/internal/pressio"
)

func main() {
	table1 := flag.Bool("table1", false, "print the Table-1 taxonomy and exit")
	flag.Parse()

	if *table1 {
		fmt.Print(bench.Table1())
		return
	}

	for _, name := range core.SchemeNames() {
		s, err := core.GetScheme(name)
		if err != nil {
			continue
		}
		info := s.Info()
		if info.Method == "" {
			continue
		}
		var supported []string
		for _, comp := range pressio.CompressorNames() {
			if s.Supports(comp) {
				supported = append(supported, comp)
			}
		}
		fmt.Printf("%s (%s)\n", name, info.Method)
		fmt.Printf("  approach:    %s (%s)\n", info.Approach, info.Goal)
		fmt.Printf("  metrics:     %s\n", strings.Join(s.Metrics(), ", "))
		fmt.Printf("  features:    %s\n", strings.Join(s.Features(), ", "))
		fmt.Printf("  target:      %s\n", s.Target())
		fmt.Printf("  compressors: %s\n", strings.Join(supported, ", "))
		if info.Features != "" {
			fmt.Printf("  extras:      %s\n", info.Features)
		}
		fmt.Println()
	}
}
