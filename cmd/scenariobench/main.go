// Command scenariobench runs a declarative macro-benchmark scenario
// against a real multi-process deployment and gates the whole system.
//
//	scenariobench -scenario scenarios/smoke.json -baseline
//	    run the scenario and write/merge its result into BENCH_system.json
//	scenariobench -scenario scenarios/smoke.json -check
//	    run it and fail on SLO violation, capacity-model nonconformance,
//	    or regression past the scenario's gate tolerances vs the baseline
//	scenariobench -scenario scenarios/full.json -predict-only
//	    print the capacity model's prediction without deploying anything
//
// The scenario file declares everything: topology (N predictd replicas +
// router), corpus (hurricane fields × steps, manifest-cached), seeded
// traffic mix, SLOs, gate tolerances, and the capacity model's inputs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/scenario"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "scenario JSON file (required)")
		file         = flag.String("file", "BENCH_system.json", "system baseline file")
		kernels      = flag.String("kernels", "BENCH_kernels.json", "kernel baseline the capacity model reads")
		baseline     = flag.Bool("baseline", false, "run and write/merge the result into -file")
		check        = flag.Bool("check", false, "run and gate against -file, SLOs, and the capacity model")
		predictOnly  = flag.Bool("predict-only", false, "evaluate the capacity model without deploying")
		bin          = flag.String("bin", "", "prebuilt predictd binary (default: build one)")
		corpusDir    = flag.String("corpus-dir", "", "corpus cache directory (default: per-scenario under the OS temp dir)")
	)
	flag.Parse()
	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "scenariobench: -scenario is required")
		os.Exit(2)
	}
	modes := 0
	for _, m := range []bool{*baseline, *check, *predictOnly} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "scenariobench: exactly one of -baseline, -check, -predict-only is required")
		os.Exit(2)
	}

	sc, err := scenario.Load(*scenarioPath)
	if err != nil {
		fatal(err)
	}

	if *predictOnly {
		res, err := scenario.PredictOnly(sc, *kernels)
		if err != nil {
			fatal(err)
		}
		printJSON(res)
		return
	}

	ctx := context.Background()
	binary := *bin
	if binary == "" {
		buildDir, err := os.MkdirTemp("", "scenariobench-bin-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(buildDir)
		fmt.Println("scenariobench: building predictd (race-enabled)...")
		if binary, err = scenario.BuildPredictd(ctx, ".", buildDir); err != nil {
			fatal(err)
		}
	}
	workDir, err := os.MkdirTemp("", "scenariobench-"+sc.Name+"-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(workDir)
	corpus := *corpusDir
	if corpus == "" {
		// a stable per-scenario path so the manifest-verified corpus
		// survives across runs
		corpus = filepath.Join(os.TempDir(), "scenariobench-corpus", sc.Name)
	}

	fmt.Printf("scenariobench: running %s (%d nodes, %.0f qps, %.0fs warmup + %.0fs steady)\n",
		sc.Name, sc.Topology.Nodes, sc.Traffic.TargetQPS, sc.Traffic.WarmupS, sc.Traffic.SteadyS)
	res, err := scenario.Run(ctx, sc, scenario.RunConfig{
		Bin:            binary,
		WorkDir:        workDir,
		CorpusDir:      corpus,
		KernelBaseline: *kernels,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scenariobench: measured %.1f qps (predicted %.1f), p50 %.1fms p99 %.1fms, %d/%d errors, hit rate %.2f, max rss %d MiB\n",
		res.Measured.AchievedQPS, res.PredictedQPS, res.Measured.P50MS, res.Measured.P99MS,
		res.Measured.Errors, res.Measured.Requests, res.Measured.CacheHitRate, res.Measured.MaxRSSBytes>>20)

	if *baseline {
		doc, err := scenario.ReadDocument(*file)
		if err != nil {
			doc = &scenario.Document{Scenarios: map[string]*scenario.SystemResult{}}
		}
		doc.Scenarios[sc.Name] = res
		if err := scenario.WriteDocument(*file, doc); err != nil {
			fatal(err)
		}
		fmt.Printf("scenariobench: wrote %s baseline to %s\n", sc.Name, *file)
		return
	}

	// -check: SLOs, conformance, then baseline gate
	failed := false
	for _, v := range scenario.CheckSLO(res, sc.SLO) {
		fmt.Fprintln(os.Stderr, "scenariobench: FAIL SLO:", v)
		failed = true
	}
	if err := scenario.CheckConformance(res); err != nil {
		fmt.Fprintln(os.Stderr, "scenariobench: FAIL conformance:", err)
		failed = true
	}
	doc, err := scenario.ReadDocument(*file)
	if err != nil {
		fatal(fmt.Errorf("%w (run `scenariobench -scenario %s -baseline` first)", err, *scenarioPath))
	}
	base := doc.Scenarios[sc.Name]
	if base == nil {
		fatal(fmt.Errorf("%s has no %q baseline (run -baseline first)", *file, sc.Name))
	}
	for _, f := range scenario.Compare(base, res, sc.Gate) {
		fmt.Fprintln(os.Stderr, "scenariobench: FAIL gate:", f.String())
		failed = true
	}
	if sp := sc.Speedup; sp != nil {
		vs := doc.Scenarios[sp.Vs]
		if vs == nil {
			fatal(fmt.Errorf("%s has no %q baseline for the speedup gate (run -baseline on it first)", *file, sp.Vs))
		}
		if err := scenario.CheckSpeedup(res, vs, sp); err != nil {
			fmt.Fprintln(os.Stderr, "scenariobench: FAIL", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("scenariobench: %s within SLOs, gate tolerances, and ±%.0f%% of the capacity model\n",
		sc.Name, sc.Capacity.ErrorBand*100)
}

func printJSON(v any) {
	raw, _ := json.MarshalIndent(v, "", "  ")
	fmt.Println(string(raw))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scenariobench:", err)
	os.Exit(1)
}
