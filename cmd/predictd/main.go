// Command predictd is the online prediction-serving daemon: it exposes
// the internal/serve subsystem — model registry, opthash-keyed result
// cache with singleflight dedup, and bounded worker pools — over an HTTP
// JSON API.
//
// Usage:
//
//	predictd -addr :8347 -store ./predictd-models
//	predictd -workers 8 -queue 128 -cache 4096 -deadline 10s
//	predictd -opts "pressio:abs=1e-4,khan:sample_fraction=0.05"
//
// Endpoints:
//
//	POST /v1/predict     features or data coordinates -> predicted metric
//	POST /v1/fit         async training job -> {"job_id": ...}
//	GET  /v1/jobs/{id}   job status
//	GET  /v1/models      registry listing
//	POST /v1/invalidate  predictors:invalidate-driven eviction
//	GET  /healthz        liveness (503 while draining or replaying the journal)
//	GET  /statz          counters and latency quantiles
//
// On startup the daemon replays the durable fit-job journal in the
// background: interrupted jobs are re-enqueued, and /healthz answers 503
// until the replay completes. `predictd -fsck` runs storecheck over the
// store directory instead of serving: it validates record CRCs, truncates
// a torn WAL tail, sweeps stale compact temps, prints the report, and
// exits (non-zero if the store is corrupt beyond safe repair).
//
// SIGTERM/SIGINT drain gracefully: the listener stops, in-flight
// predictions and training jobs finish, and the store is closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/pressio"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8347", "listen address")
		storeDir   = flag.String("store", "predictd-models", "model registry directory")
		workers    = flag.Int("workers", 4, "predict worker pool size")
		queue      = flag.Int("queue", 64, "predict queue depth before 429s")
		cacheSize  = flag.Int("cache", 1024, "result cache capacity")
		deadline   = flag.Duration("deadline", 30*time.Second, "per-request compute deadline")
		fitWorkers = flag.Int("fit-workers", 1, "training worker pool size")
		fitQueue   = flag.Int("fit-queue", 8, "training queue depth")
		jobTTL     = flag.Duration("job-ttl", time.Hour, "how long finished fit jobs stay queryable")
		jobRetain  = flag.Int("job-retain", 256, "max finished fit jobs retained")
		fsync      = flag.Bool("fsync", true, "fsync the store WAL after every append")
		fsck       = flag.Bool("fsck", false, "run storecheck on the store directory, repair what is safe, and exit")
		optsFlag   = flag.String("opts", "", "default options merged under every request, key=value[,key=value...]")
	)
	flag.Parse()
	if *fsck {
		rep, err := store.Fsck(*storeDir, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "predictd:", err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		return
	}
	if err := run(*addr, *storeDir, *optsFlag, *fsync, serve.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheSize:     *cacheSize,
		Deadline:      *deadline,
		FitWorkers:    *fitWorkers,
		FitQueueDepth: *fitQueue,
		JobTTL:        *jobTTL,
		JobRetain:     *jobRetain,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "predictd:", err)
		os.Exit(1)
	}
}

func run(addr, storeDir, optsFlag string, fsync bool, cfg serve.Config) error {
	if optsFlag != "" {
		opts, err := defaultOptions(optsFlag)
		if err != nil {
			return err
		}
		cfg.DefaultOptions = opts
	}

	st, err := store.Open(storeDir)
	if err != nil {
		return err
	}
	defer st.Close()
	st.Sync = fsync

	srv, err := serve.New(st, cfg)
	if err != nil {
		return err
	}
	log.Printf("predictd: serving on %s (store %s, %d models)", addr, storeDir, srv.Registry().Len())

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// replay the fit-job journal while the listener comes up; /healthz and
	// /v1/fit answer 503 until the replay lands, so a load balancer holds
	// traffic without the daemon delaying its bind
	go func() {
		if err := srv.Recover(ctx); err != nil {
			log.Printf("predictd: journal replay: %v", err)
			return
		}
		log.Print("predictd: journal replay complete")
	}()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Print("predictd: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("predictd: shutdown: %v", err)
	}
	srv.Drain()
	log.Print("predictd: drained")
	return nil
}

// defaultOptions parses the -opts flag into typed pressio options,
// guessing value types the way the config file loader does: bool, int,
// float, then string.
func defaultOptions(s string) (pressio.Options, error) {
	kv, err := cliutil.ParseAssignments(s)
	if err != nil {
		return nil, fmt.Errorf("-opts: %w", err)
	}
	opts := pressio.Options{}
	for k, v := range kv {
		switch {
		case v == "true" || v == "false":
			opts.Set(k, v == "true")
		default:
			if i, err := strconv.ParseInt(v, 10, 64); err == nil {
				opts.Set(k, i)
			} else if f, err := strconv.ParseFloat(v, 64); err == nil {
				opts.Set(k, f)
			} else {
				opts.Set(k, v)
			}
		}
	}
	return opts, nil
}
