// Command predictd is the online prediction-serving daemon: it exposes
// the internal/serve subsystem — model registry, opthash-keyed result
// cache with singleflight dedup, and bounded worker pools — over an HTTP
// JSON API.
//
// Usage:
//
//	predictd -addr :8347 -store ./predictd-models
//	predictd -workers 8 -queue 128 -cache 4096 -deadline 10s
//	predictd -opts "pressio:abs=1e-4,khan:sample_fraction=0.05"
//
//	# 3-node replicated cluster behind a router
//	predictd -addr :7001 -store n1 -node n1 -peers "n2=http://127.0.0.1:7002,n3=http://127.0.0.1:7003"
//	predictd -addr :7002 -store n2 -node n2 -peers "n1=http://127.0.0.1:7001,n3=http://127.0.0.1:7003"
//	predictd -addr :7003 -store n3 -node n3 -peers "n1=http://127.0.0.1:7001,n2=http://127.0.0.1:7002"
//	predictd -addr :7000 -router -members "n1=http://127.0.0.1:7001,n2=http://127.0.0.1:7002,n3=http://127.0.0.1:7003"
//
// Endpoints:
//
//	POST /v1/predict     features or data coordinates -> predicted metric
//	POST /v1/predict/batch  columnar (or NDJSON / length-prefixed frame
//	                     streaming) batch -> one result per input
//	POST /v1/fit         async training job -> {"job_id": ...}
//	GET  /v1/jobs/{id}   job status
//	GET  /v1/models      registry listing
//	POST /v1/invalidate  predictors:invalidate-driven eviction
//	GET  /healthz        liveness (503 while draining or replaying the journal)
//	GET  /statz          counters and latency quantiles
//	GET  /v1/repl/*      replication stream/ack/status/adopt (cluster mode)
//
// On startup the daemon replays the durable fit-job journal in the
// background: interrupted jobs are re-enqueued, and /healthz answers 503
// until the replay completes. `predictd -fsck` runs storecheck over the
// store directory instead of serving: it validates record CRCs, truncates
// a torn WAL tail, sweeps stale compact temps, prints the report, and
// exits (non-zero if the store is corrupt beyond safe repair).
//
// SIGTERM/SIGINT drain gracefully: the listener stops, in-flight
// predictions and training jobs finish, and the store is closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/pressio"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8347", "listen address")
		storeDir   = flag.String("store", "predictd-models", "model registry directory")
		workers    = flag.Int("workers", 4, "predict worker pool size")
		queue      = flag.Int("queue", 64, "predict queue depth before 429s")
		cacheSize  = flag.Int("cache", 1024, "result cache capacity")
		deadline   = flag.Duration("deadline", 30*time.Second, "per-request compute deadline")
		fitWorkers = flag.Int("fit-workers", 1, "training worker pool size")
		fitQueue   = flag.Int("fit-queue", 8, "training queue depth")
		jobTTL     = flag.Duration("job-ttl", time.Hour, "how long finished fit jobs stay queryable")
		jobRetain  = flag.Int("job-retain", 256, "max finished fit jobs retained")
		fsync      = flag.Bool("fsync", true, "fsync the store WAL after every append")
		dataCache  = flag.Int64("data-cache-bytes", 0, "tiered dataset cache memory budget (0 = 128MiB default, negative disables)")
		dataSpill  = flag.String("data-spill", "", "dataset cache mmap spill directory (empty disables the disk tier)")
		coalesce   = flag.Duration("coalesce-window", 500*time.Microsecond, "window for fusing concurrent same-model predicts (0 disables)")
		fsck       = flag.Bool("fsck", false, "run storecheck on the store directory, repair what is safe, and exit")
		optsFlag   = flag.String("opts", "", "default options merged under every request, key=value[,key=value...]")

		nodeName     = flag.String("node", "", "cluster node name (enables replicated mode; requires -peers)")
		peersFlag    = flag.String("peers", "", "cluster peers, name=url[,name=url...]")
		replDir      = flag.String("repl-dir", "", "replication log directory (default <store>/repl)")
		minAcks      = flag.Int("min-acks", 0, "follower acks required before a fit 202 (default 1 with peers; -1 disables)")
		ackTimeout   = flag.Duration("ack-timeout", 5*time.Second, "fit replication-barrier timeout")
		pollInterval = flag.Duration("poll-interval", 100*time.Millisecond, "replication fetch interval")

		routerMode    = flag.Bool("router", false, "run as the stateless cluster router (requires -members)")
		membersFlag   = flag.String("members", "", "router members, name=url[,name=url...]")
		probeInterval = flag.Duration("probe-interval", 200*time.Millisecond, "router health-probe interval")
		replicas      = flag.Int("replicas", 0, "replicas per partition (default: all members)")

		readyFile = flag.String("ready-file", "", "write the bound listen address here once the listener is up")
		faultPlan = flag.String("fault-plan", "", "fault-injection plan (testing only; crash rules exit 137)")
		faultSeed = flag.Uint64("fault-seed", 1, "fault-plan RNG seed")
	)
	flag.Parse()
	if *fsck {
		rep, err := store.Fsck(*storeDir, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "predictd:", err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		return
	}

	var plan *faultinject.Plan
	if *faultPlan != "" {
		var err error
		plan, err = faultinject.Parse(*faultSeed, *faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "predictd:", err)
			os.Exit(1)
		}
		// a scripted crash is real process death: the cluster harness
		// uses this as deterministic kill -9 at an exact operation
		plan.SetCrashHook(func() { os.Exit(137) })
	}

	var err error
	if *routerMode {
		err = runRouter(*addr, *membersFlag, *readyFile, cluster.RouterConfig{
			ProbeInterval: *probeInterval,
			Replicas:      *replicas,
			Seed:          *faultSeed,
		}, plan)
	} else {
		err = run(runConfig{
			addr: *addr, storeDir: *storeDir, optsFlag: *optsFlag, fsync: *fsync,
			nodeName: *nodeName, peersFlag: *peersFlag, replDir: *replDir,
			minAcks: *minAcks, ackTimeout: *ackTimeout, pollInterval: *pollInterval,
			readyFile: *readyFile, plan: plan,
		}, serve.Config{
			Workers:        *workers,
			QueueDepth:     *queue,
			CacheSize:      *cacheSize,
			Deadline:       *deadline,
			FitWorkers:     *fitWorkers,
			FitQueueDepth:  *fitQueue,
			JobTTL:         *jobTTL,
			JobRetain:      *jobRetain,
			DataCacheBytes: *dataCache,
			DataSpillDir:   *dataSpill,
			CoalesceWindow: *coalesce,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "predictd:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	addr, storeDir, optsFlag string
	fsync                    bool
	nodeName, peersFlag      string
	replDir                  string
	minAcks                  int
	ackTimeout, pollInterval time.Duration
	readyFile                string
	plan                     *faultinject.Plan
}

// hardenedServer wraps a handler in an http.Server with the connection
// timeouts a public daemon needs: a slow-reading or slow-sending client
// is cut off instead of pinning a connection (and its goroutine)
// indefinitely. writeBudget must cover the slowest legitimate response
// (a predict at the full compute deadline).
func hardenedServer(h http.Handler, writeBudget time.Duration) *http.Server {
	if writeBudget < time.Minute {
		writeBudget = time.Minute
	}
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeBudget,
		IdleTimeout:       2 * time.Minute,
	}
}

// serveListener binds addr, optionally writes the bound address to a
// ready file (the multi-process harness reads it to learn a :0 port),
// and serves until ctx is done.
func serveListener(ctx context.Context, httpSrv *http.Server, addr, readyFile string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if readyFile != "" {
		tmp := readyFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return err
		}
		if err := os.Rename(tmp, readyFile); err != nil {
			ln.Close()
			return err
		}
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Print("predictd: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("predictd: shutdown: %v", err)
	}
	return nil
}

func run(rc runConfig, cfg serve.Config) error {
	if rc.optsFlag != "" {
		opts, err := defaultOptions(rc.optsFlag)
		if err != nil {
			return err
		}
		cfg.DefaultOptions = opts
	}

	st, err := store.Open(rc.storeDir)
	if err != nil {
		return err
	}
	defer st.Close()
	st.Sync = rc.fsync
	st.Inject = rc.plan

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// cluster mode: open the replication logs and heal the copy-log
	// suffix before the registry loads, so absorbed models are visible
	var node *cluster.Node
	if rc.nodeName != "" {
		peers, err := parseMembers(rc.peersFlag)
		if err != nil {
			return err
		}
		dir := rc.replDir
		if dir == "" {
			dir = filepath.Join(rc.storeDir, "repl")
		}
		node, err = cluster.NewNode(st, cluster.NodeConfig{
			Name: rc.nodeName, Peers: peers, ReplDir: dir,
			MinAcks: rc.minAcks, AckTimeout: rc.ackTimeout,
			PollInterval: rc.pollInterval,
			Client:       &http.Client{Transport: &faultinject.RoundTripper{Plan: rc.plan}},
			Inject:       rc.plan,
		})
		if err != nil {
			return err
		}
		defer node.Close()
		cfg.NodeName = rc.nodeName
		cfg.AckBarrier = node.Barrier
	}

	srv, err := serve.New(st, cfg)
	if err != nil {
		return err
	}
	handler := srv.Handler()
	if node != nil {
		node.AttachServer(srv)
		mux := http.NewServeMux()
		node.Register(mux)
		mux.Handle("/", handler)
		handler = mux
		node.Start(ctx)
	}
	log.Printf("predictd: serving on %s (store %s, %d models)", rc.addr, rc.storeDir, srv.Registry().Len())

	// replay the fit-job journal while the listener comes up; /healthz and
	// /v1/fit answer 503 until the replay lands, so a load balancer holds
	// traffic without the daemon delaying its bind
	go func() {
		if node != nil {
			// sync from reachable peers first: jobs a failover adopter
			// already finished replay as replicated state, not as re-runs
			cctx, cancel := context.WithTimeout(ctx, time.Minute)
			node.CatchUp(cctx)
			cancel()
		}
		if err := srv.Recover(ctx); err != nil {
			log.Printf("predictd: journal replay: %v", err)
			return
		}
		log.Print("predictd: journal replay complete")
	}()

	httpSrv := hardenedServer(handler, 2*cfg.Deadline)
	if err := serveListener(ctx, httpSrv, rc.addr, rc.readyFile); err != nil {
		return err
	}
	srv.Drain()
	log.Print("predictd: drained")
	return nil
}

func runRouter(addr, membersFlag, readyFile string, cfg cluster.RouterConfig, plan *faultinject.Plan) error {
	members, err := parseMembers(membersFlag)
	if err != nil {
		return err
	}
	if len(members) == 0 {
		return fmt.Errorf("-router requires -members")
	}
	cfg.Members = members
	cfg.Client = &http.Client{Transport: &faultinject.RoundTripper{Plan: plan}}
	router := cluster.NewRouter(cfg)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	router.Start(ctx)
	log.Printf("predictd: routing on %s across %d members", addr, len(members))
	return serveListener(ctx, hardenedServer(router.Handler(), time.Minute), addr, readyFile)
}

// parseMembers parses "name=url[,name=url...]" (splitting on the first
// '=' of each entry, since URLs may embed '=').
func parseMembers(s string) (map[string]string, error) {
	out := map[string]string{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad member %q (want name=url)", part)
		}
		out[name] = strings.TrimSuffix(url, "/")
	}
	return out, nil
}

// defaultOptions parses the -opts flag into typed pressio options,
// guessing value types the way the config file loader does: bool, int,
// float, then string.
func defaultOptions(s string) (pressio.Options, error) {
	kv, err := cliutil.ParseAssignments(s)
	if err != nil {
		return nil, fmt.Errorf("-opts: %w", err)
	}
	opts := pressio.Options{}
	for k, v := range kv {
		switch {
		case v == "true" || v == "false":
			opts.Set(k, v == "true")
		default:
			if i, err := strconv.ParseInt(v, 10, 64); err == nil {
				opts.Set(k, i)
			} else if f, err := strconv.ParseFloat(v, 64); err == nil {
				opts.Set(k, f)
			} else {
				opts.Set(k, v)
			}
		}
	}
	return opts, nil
}
