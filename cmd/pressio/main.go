// Command pressio compresses and decompresses a single buffer with any
// registered compressor and reports size, error, and timing metrics — the
// Go analogue of the LibPressio command-line tool, and the quickest way
// to poke at the compressor substrates.
//
// Usage:
//
//	pressio -compressor sz3 -abs 1e-4 -field P -step 0 -dims 32x64x64
//	pressio -compressor zfp -abs 1e-3 -input data_64x64x32.f32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"

	_ "repro/internal/compressor/lossless"
	_ "repro/internal/compressor/sz3"
	_ "repro/internal/compressor/szx"
	_ "repro/internal/compressor/zfp"
	"repro/internal/dataset"
	"repro/internal/hurricane"
	_ "repro/internal/metrics"
	"repro/internal/pressio"
)

func main() {
	var (
		compressor = flag.String("compressor", "sz3", "compressor plugin: "+strings.Join(pressio.CompressorNames(), ", "))
		abs        = flag.Float64("abs", 1e-4, "absolute error bound (pressio:abs)")
		input      = flag.String("input", "", "input file (.f32/.f64 with _DxDxD name suffix, or .pdat)")
		field      = flag.String("field", "P", "synthetic Hurricane field (when -input is empty)")
		step       = flag.Int("step", 0, "synthetic Hurricane timestep")
		dims       = flag.String("dims", "32x64x64", "synthetic grid dims, ZxYxX")
	)
	flag.Parse()

	data, name, err := loadInput(*input, *field, *step, *dims)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pressio:", err)
		os.Exit(1)
	}

	comp, err := pressio.GetCompressor(*compressor)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pressio:", err)
		os.Exit(1)
	}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, *abs)
	group, err := pressio.NewMetricsGroup(comp, "size", "error_stat")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pressio:", err)
		os.Exit(1)
	}
	if err := group.SetOptions(opts); err != nil {
		fmt.Fprintln(os.Stderr, "pressio:", err)
		os.Exit(1)
	}

	compressed, err := group.Compress(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pressio: compress:", err)
		os.Exit(1)
	}
	out := pressio.New(data.DType(), data.Dims()...)
	if err := group.Decompress(compressed, out); err != nil {
		fmt.Fprintln(os.Stderr, "pressio: decompress:", err)
		os.Exit(1)
	}

	results := group.Results()
	fmt.Printf("input:      %s (%s, dims %v, %d bytes)\n", name, data.DType(), data.Dims(), data.ByteSize())
	fmt.Printf("compressor: %s  abs=%g\n", *compressor, *abs)
	for _, key := range []string{
		"size:compressed", "size:compression_ratio", "size:bit_rate",
		"error_stat:max_error", "error_stat:psnr",
		"time:compress", "time:decompress",
	} {
		if v, ok := results.GetFloat(key); ok {
			fmt.Printf("%-26s %.6g\n", key, v)
		} else if v, ok := results.GetInt(key); ok {
			fmt.Printf("%-26s %d\n", key, v)
		}
	}
}

func loadInput(input, field string, step int, dimStr string) (*pressio.Data, string, error) {
	if input != "" {
		meta, err := dataset.FileMetadata(input)
		if err != nil {
			return nil, "", err
		}
		d, err := dataset.LoadFile(meta)
		return d, meta.Name, err
	}
	dims, err := cliutil.ParseDims(dimStr)
	if err != nil {
		return nil, "", err
	}
	d, err := hurricane.Field(field, step, dims)
	return d, fmt.Sprintf("hurricane/%s.t%02d", field, step), err
}
