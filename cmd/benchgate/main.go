// Command benchgate runs the kernel microbenchmarks in bench_kernels_test.go
// and gates them against the committed BENCH_kernels.json baseline.
//
//	benchgate -baseline   re-measure and rewrite BENCH_kernels.json
//	benchgate -check      re-measure and fail on >10% ns/op or allocs/op
//	                      regression against the committed baseline
//
// The baseline file also carries the pre-optimization "seed" numbers the
// block-parallel refactor was measured against, so the file doubles as
// the before/after record referenced by EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/gate"
)

// Measurement is one benchmark's gated metrics.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the committed BENCH_kernels.json schema.
type Baseline struct {
	Note       string                 `json:"note"`
	GoVersion  string                 `json:"go_version"`
	CPU        string                 `json:"cpu"`
	BenchTime  string                 `json:"benchtime"`
	Seed       map[string]Measurement `json:"seed,omitempty"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

const (
	baselineFile = "BENCH_kernels.json"
	benchPattern = "^Benchmark(Kernel|Serve)"
	benchTime    = "2s"
	tolerance    = 0.10
)

// benchPackages are the packages the gate measures: the root package's
// kernel microbenchmarks plus internal/serve's hot-path benchmarks
// (BenchmarkServePredictBatch gates the batch endpoint's steady-state
// allocs/op at its committed near-zero figure).
var benchPackages = []string{".", "./internal/serve"}

func main() {
	baseline := flag.Bool("baseline", false, "re-measure and rewrite "+baselineFile)
	check := flag.Bool("check", false, "re-measure and compare against "+baselineFile)
	file := flag.String("file", baselineFile, "baseline file path")
	flag.Parse()
	if *baseline == *check {
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -baseline or -check is required")
		os.Exit(2)
	}

	results, cpu, err := runBenchmarks()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmarks matched", benchPattern)
		os.Exit(1)
	}

	if *baseline {
		if err := writeBaseline(*file, results, cpu); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(results), *file)
		return
	}

	prev, err := readBaseline(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v (run `make bench-baseline` first)\n", err)
		os.Exit(1)
	}
	if failures := compare(prev.Benchmarks, results); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within %.0f%% of %s\n", len(results), tolerance*100, *file)
}

// benchLine matches one `go test -bench` result row, e.g.
//
//	BenchmarkKernelSZ3Compress/serial-4   142   8400000 ns/op   164 MB/s   12 B/op   166 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:.*?\s([\d.]+) allocs/op)?`)

// runBenchmarks executes the gated benchmark suites once per package
// and parses the per-benchmark ns/op and allocs/op.
func runBenchmarks() (map[string]Measurement, string, error) {
	results := make(map[string]Measurement)
	cpu := ""
	for _, pkg := range benchPackages {
		pkgCPU, err := runPackage(pkg, results)
		if err != nil {
			return nil, "", err
		}
		if pkgCPU != "" {
			cpu = pkgCPU
		}
	}
	return results, cpu, nil
}

// runPackage benchmarks one package into the shared results map.
func runPackage(pkg string, results map[string]Measurement) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", benchPattern, "-benchtime", benchTime, "-count", "1", pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go test -bench %s failed: %v\n%s", pkg, err, out)
	}
	cpu := ""
	for _, line := range strings.Split(string(out), "\n") {
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		allocs := 0.0
		if m[3] != "" {
			allocs, _ = strconv.ParseFloat(m[3], 64)
		}
		results[m[1]] = Measurement{NsPerOp: ns, AllocsPerOp: allocs}
	}
	return cpu, nil
}

// kernelRules is the kernel schema's gate: ns/op and allocs/op both
// regress upward, with an absolute 0.5-alloc slack so integer alloc
// counts have a noise band. The comparison itself is the shared
// internal/gate engine, the same one the system scenario gate
// (BENCH_system.json) runs on.
var kernelRules = []gate.Rule{
	{Metric: "ns_per_op", Worse: gate.HigherIsWorse, Tolerance: tolerance},
	{Metric: "allocs_per_op", Worse: gate.HigherIsWorse, Tolerance: tolerance, Slack: 0.5},
}

// compare returns a description of every benchmark whose ns/op or
// allocs/op regressed past the tolerance, plus baselined benchmarks that
// disappeared (a deleted benchmark silently ungates its kernel).
func compare(base, cur map[string]Measurement) []string {
	fails := gate.Compare(toRows(base), toRows(cur), kernelRules)
	out := make([]string, len(fails))
	for i, f := range fails {
		out[i] = f.String()
	}
	return out
}

// toRows projects the kernel schema into the shared gate row form.
func toRows(ms map[string]Measurement) map[string]gate.Row {
	rows := make(map[string]gate.Row, len(ms))
	for name, m := range ms {
		rows[name] = gate.Row{"ns_per_op": m.NsPerOp, "allocs_per_op": m.AllocsPerOp}
	}
	return rows
}

func readBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return &b, nil
}

func writeBaseline(path string, results map[string]Measurement, cpu string) error {
	b := &Baseline{
		Note: "Kernel benchmark baseline for `make bench-check` (>10% ns/op or allocs/op " +
			"regression fails). Regenerate with `make bench-baseline` on a quiet machine. " +
			"The seed section records the pre-optimization serial numbers the " +
			"block-parallel refactor started from; see EXPERIMENTS.md.",
		GoVersion:  goVersion(),
		CPU:        cpu,
		BenchTime:  benchTime,
		Benchmarks: results,
	}
	// carry the seed record forward across re-baselines
	if prev, err := readBaseline(path); err == nil && len(prev.Seed) > 0 {
		b.Seed = prev.Seed
	} else {
		b.Seed = seedMeasurements
	}
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func goVersion() string {
	out, err := exec.Command("go", "env", "GOVERSION").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// seedMeasurements are the serial kernel costs measured at the seed
// commit, before the block-parallel refactor and scratch pooling. They
// are informational (the gate compares against Benchmarks, not Seed) and
// exist so the before/after of the refactor stays in the repo.
var seedMeasurements = map[string]Measurement{
	"BenchmarkKernelSZ3Compress/serial":   {NsPerOp: 10476875, AllocsPerOp: 1983},
	"BenchmarkKernelSZ3Decompress/serial": {NsPerOp: 9655051, AllocsPerOp: 1908},
	"BenchmarkKernelZFPCompress/serial":   {NsPerOp: 7379664, AllocsPerOp: 107},
	"BenchmarkKernelZFPDecompress/serial": {NsPerOp: 8303976, AllocsPerOp: 74},
	"BenchmarkKernelSZXCompress/serial":   {NsPerOp: 1032712, AllocsPerOp: 36},
	"BenchmarkKernelSZXDecompress/serial": {NsPerOp: 219535, AllocsPerOp: 1},
	"BenchmarkKernelHuffman/encode":       {NsPerOp: 2192285, AllocsPerOp: 90},
	"BenchmarkKernelHuffman/decode":       {NsPerOp: 2040868, AllocsPerOp: 52},
	"BenchmarkKernelMetricsChain":         {NsPerOp: 12109051, AllocsPerOp: 542},
}
