// Command predict-bench is LibPressio-Predict-Bench: it schedules metric
// and compressor observations over a locality-aware task queue with
// checkpoint/restart, cross-validates the prediction schemes, and prints
// the paper's evaluation artifacts.
//
// Usage:
//
//	predict-bench -table2                      # the full Table-2 run
//	predict-bench -table2 -store ./ckpt -v    # checkpointed, verbose
//	predict-bench -baseline                    # compressor baselines only
//	predict-bench -ablation svd                # Underwood SVD-cost ablation
//	predict-bench -ablation jin                # Jin iterator ablation
//
// Scale knobs: -fields, -steps, -dims, -bounds, -schemes, -folds,
// -workers. Defaults reproduce the paper's setup (13 fields × 48
// timesteps, bounds 1e-6 and 1e-4, SZ3 + ZFP, 10-fold CV) on the
// synthetic Hurricane grid.
//
// Resilience knobs: -task-timeout bounds each observation attempt,
// -retries sets the per-task retry budget, and -fault-plan scripts
// deterministic failures (see package faultinject) for drills. SIGINT
// or SIGTERM cancels the run gracefully: finished cells stay
// checkpointed and the command prints how to resume.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/bench"
	"repro/internal/cliutil"
	"repro/internal/faultinject"
)

func main() {
	var (
		table2      = flag.Bool("table2", false, "run the Table-2 evaluation (default action)")
		baseline    = flag.Bool("baseline", false, "measure compressor baselines only")
		ablation    = flag.String("ablation", "", "run an ablation: svd | jin")
		fields      = flag.String("fields", "", "comma-separated Hurricane fields (default all 13)")
		steps       = flag.Int("steps", 0, "timesteps (default 48)")
		dims        = flag.String("dims", "", "grid dims ZxYxX (default 32x64x64)")
		bounds      = flag.String("bounds", "", "comma-separated abs bounds (default 1e-6,1e-4)")
		schemes     = flag.String("schemes", "", "comma-separated schemes (default khan2023,jin2022,rahman2023)")
		folds       = flag.Int("folds", 0, "cross-validation folds (default 10)")
		workers     = flag.Int("workers", 0, "queue workers (default 4)")
		storeDir    = flag.String("store", "", "checkpoint directory (enables restart)")
		inSample    = flag.Bool("insample", false, "in-sample CV (paper future-work #1) instead of out-of-sample grouping")
		target      = flag.String("target", "cr", "prediction target: cr | bandwidth (future-work #4)")
		reps        = flag.Int("replicates", 0, "compressor-run replicates per cell for runtime targets (default 1)")
		serve       = flag.String("serve", "", "run as a TCP observation worker on this address and block (e.g. :7777)")
		remote      = flag.String("remote", "", "comma-separated worker endpoints to fan observation cells out to")
		taskTimeout = flag.Duration("task-timeout", 0, "per-task attempt deadline, e.g. 30s (0 = none)")
		retries     = flag.Int("retries", 0, "per-task retry budget (default 2, -1 for none)")
		faultPlan   = flag.String("fault-plan", "", "fault-injection script, inline or @file (resilience drills)")
		seed        = flag.Int64("seed", 0, "seed for folds, backoff jitter, and fault injection (default 1)")
		format      = flag.String("format", "table", "table2 output format: table | csv")
		scatter     = flag.String("scatter", "", "emit predicted-vs-actual CSV for scheme,compressor (e.g. rahman2023,sz3)")
		storeInfo   = flag.String("store-info", "", "summarize a checkpoint directory and exit")
		verbose     = flag.Bool("v", false, "print per-task progress")
	)
	flag.Parse()

	if *serve != "" {
		ln, err := bench.ServeWorker(*serve)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "predict-bench: worker listening on %s\n", ln.Addr())
		// workers shut down cleanly on SIGINT/SIGTERM: stop accepting,
		// let in-flight observations finish on their connections
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		<-ctx.Done()
		ln.Close()
		fmt.Fprintln(os.Stderr, "predict-bench: worker stopped")
		return
	}

	spec := &bench.Spec{
		Steps:       *steps,
		Folds:       *folds,
		Workers:     *workers,
		StoreDir:    *storeDir,
		InSample:    *inSample,
		Target:      *target,
		Replicates:  *reps,
		TaskTimeout: *taskTimeout,
		Retries:     *retries,
		Seed:        *seed,
	}
	if *remote != "" {
		spec.RemoteWorkers = cliutil.ParseList(*remote)
	}
	if *fields != "" {
		spec.Fields = cliutil.ParseList(*fields)
	}
	if *schemes != "" {
		spec.Schemes = cliutil.ParseList(*schemes)
	}
	if *dims != "" {
		d, err := cliutil.ParseDims(*dims)
		if err != nil {
			fatal(err)
		}
		spec.Dims = d
	}
	if *bounds != "" {
		b, err := cliutil.ParseBounds(*bounds)
		if err != nil {
			fatal(err)
		}
		spec.Bounds = b
	}
	if *faultPlan != "" {
		text := *faultPlan
		if strings.HasPrefix(text, "@") {
			raw, err := os.ReadFile(text[1:])
			if err != nil {
				fatal(err)
			}
			text = string(raw)
		}
		planSeed := uint64(*seed)
		if planSeed == 0 {
			planSeed = 1
		}
		plan, err := faultinject.Parse(planSeed, text)
		if err != nil {
			fatal(err)
		}
		spec.FaultPlan = plan
	}
	if *verbose {
		spec.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	// graceful shutdown: the first SIGINT/SIGTERM cancels the run
	// context — in-flight cells finish or are abandoned, completed cells
	// stay checkpointed, the store is flushed on the way out; a second
	// signal falls back to default handling and kills the process.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "\npredict-bench: interrupted — draining (send again to kill)")
		cancel()
		signal.Stop(sigc)
	}()

	switch {
	case *storeInfo != "":
		out, err := bench.StoreInfo(*storeInfo)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case *scatter != "":
		parts := cliutil.ParseList(*scatter)
		if len(parts) != 2 {
			fatal(fmt.Errorf("-scatter wants scheme,compressor"))
		}
		res, err := bench.CollectDetailed(ctx, spec)
		if err != nil {
			reportInterrupted(ctx, spec)
			fatal(err)
		}
		reportInterrupted(ctx, spec)
		out, err := bench.Scatter(spec, parts[0], parts[1], res.Observations)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case *baseline:
		out, err := bench.BaselineOnly(spec)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case *ablation == "svd":
		out, err := bench.AblationSVD(spec, 8)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case *ablation == "jin":
		out, err := bench.AblationJin(spec, 8)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case *ablation != "":
		fatal(fmt.Errorf("unknown ablation %q (want svd or jin)", *ablation))
	default:
		_ = table2 // the default action
		report, err := bench.RunContext(ctx, spec)
		if err != nil {
			// an interrupted run can leave too few cells for evaluation;
			// the checkpoint is still intact, so say how to resume
			reportInterrupted(ctx, spec)
			fatal(err)
		}
		reportInterrupted(ctx, spec)
		if *format == "csv" {
			fmt.Print(report.CSV())
		} else {
			fmt.Print(report.Table2())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "predict-bench:", err)
	os.Exit(1)
}

// reportInterrupted tells the user how to resume after a cancelled run.
func reportInterrupted(ctx context.Context, spec *bench.Spec) {
	if ctx.Err() == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "predict-bench: run interrupted; results below cover completed cells only")
	if spec.StoreDir != "" {
		fmt.Fprintf(os.Stderr, "predict-bench: checkpoint flushed — resume with the same flags and -store %s\n", spec.StoreDir)
	} else {
		fmt.Fprintln(os.Stderr, "predict-bench: tip: run with -store DIR to make interrupted runs resumable")
	}
}
