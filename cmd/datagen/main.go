// Command datagen materializes the synthetic Hurricane dataset to disk as
// raw .f32 files in the naming convention the folder loader parses —
// standing in for downloading the Hurricane Isabel binaries.
//
// Usage:
//
//	datagen -out ./hurricane -dims 32x64x64 -steps 48
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/dataset"
	"repro/internal/hurricane"
)

func main() {
	var (
		out    = flag.String("out", "hurricane-data", "output directory")
		dims   = flag.String("dims", "32x64x64", "grid dims, ZxYxX")
		steps  = flag.Int("steps", hurricane.Timesteps, "timesteps to generate")
		fields = flag.String("fields", "", "comma-separated field subset (default: all 13)")
	)
	flag.Parse()

	dimList, err := cliutil.ParseDims(*dims)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fieldList := hurricane.FieldNames
	if *fields != "" {
		fieldList = cliutil.ParseList(*fields)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	total := 0
	var bytes int64
	for _, field := range fieldList {
		for step := 0; step < *steps; step++ {
			data, err := hurricane.Field(field, step, dimList)
			if err != nil {
				fmt.Fprintln(os.Stderr, "datagen:", err)
				os.Exit(1)
			}
			name := fmt.Sprintf("%s.t%02d", field, step)
			path, err := dataset.WriteRaw(*out, name, data)
			if err != nil {
				fmt.Fprintln(os.Stderr, "datagen:", err)
				os.Exit(1)
			}
			total++
			bytes += int64(data.ByteSize())
			if step == 0 {
				fmt.Printf("%s ...\n", path)
			}
		}
	}
	fmt.Printf("wrote %d files (%.1f MiB) to %s\n", total, float64(bytes)/(1<<20), *out)
}
