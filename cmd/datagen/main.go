// Command datagen materializes the synthetic Hurricane dataset to disk as
// raw .f32 files in the naming convention the folder loader parses —
// standing in for downloading the Hurricane Isabel binaries.
//
// Every run writes a MANIFEST.json beside the data recording the
// generator inputs (fields, steps, dims, seed) and the size + SHA-256 of
// every file, so a corpus is byte-reproducible and consumers (the
// scenario harness, a re-run of datagen itself) can verify and reuse it
// instead of regenerating.
//
// Usage:
//
//	datagen -out ./hurricane -dims 32x64x64 -steps 48
//	datagen -out ./smoke -dims 8x8x8 -steps 4 -fields P,TC -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/dataset"
	"repro/internal/hurricane"
)

func main() {
	var (
		out    = flag.String("out", "hurricane-data", "output directory")
		dims   = flag.String("dims", "32x64x64", "grid dims, ZxYxX")
		steps  = flag.Int("steps", hurricane.Timesteps, "timesteps to generate")
		fields = flag.String("fields", "", "comma-separated field subset (default: all 13)")
		seed   = flag.Uint64("seed", 0, "corpus seed (0 is the canonical dataset predictd synthesizes)")
	)
	flag.Parse()

	dimList, err := cliutil.ParseDims(*dims)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fieldList := hurricane.FieldNames
	if *fields != "" {
		fieldList = cliutil.ParseList(*fields)
	}

	m, cached, err := dataset.BuildCorpus(*out, fieldList, *steps, dimList, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if cached {
		fmt.Printf("reusing %d files (%.1f MiB) in %s (manifest verified)\n",
			len(m.Entries), float64(m.TotalBytes())/(1<<20), *out)
		return
	}
	fmt.Printf("wrote %d files (%.1f MiB) to %s (seed %d, manifest %s)\n",
		len(m.Entries), float64(m.TotalBytes())/(1<<20), *out, *seed, dataset.ManifestName)
}
