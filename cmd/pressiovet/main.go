// Command pressiovet runs the repo's custom analysis suite (DESIGN.md
// §11) through the `go vet -vettool` protocol:
//
//	go build -o bin/pressiovet ./cmd/pressiovet
//	go vet -vettool=$(pwd)/bin/pressiovet ./...
//
// or simply `make lint`. The binary speaks the unitchecker protocol, so
// the go command handles package loading, caching, and fact plumbing;
// pressiovet only contributes the analyzers in internal/lint.
package main

import (
	"repro/internal/lint"
	"repro/internal/xtools/analysis/unitchecker"
)

func main() {
	unitchecker.Main(lint.Analyzers()...)
}
