// Package repro is a pure-Go reproduction of "LibPressio-Predict:
// Flexible and Fast Infrastructure For Inferring Compression Performance"
// (SC-W 2023).
//
// The root package carries the repository-level benchmark harness
// (bench_test.go — one benchmark per table and figure of the paper) and
// integration tests; the implementation lives under internal/:
//
//   - internal/pressio: LibPressio core (data, options, plugins)
//   - internal/compressor/{sz3,zfp,szx,lossless}: compressor substrates
//   - internal/dataset, internal/hurricane: the Figure-2 loading pipeline
//     and the synthetic Hurricane Isabel stand-in
//   - internal/core, internal/metrics, internal/predictors: the paper's
//     contribution — libpressio-predict — and the ported schemes
//   - internal/bench, internal/queue, internal/store, internal/opthash:
//     libpressio-predict-bench with its scheduling and checkpointing
//   - internal/stats, internal/mlkit: statistics and model substrates
//
// See DESIGN.md for the full inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison.
package repro
