package repro

// Integration tests: the cross-package flows the paper's figures sketch,
// exercised end to end against the real plugins.

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/bench"
	_ "repro/internal/compressor/lossless"
	_ "repro/internal/compressor/sz3"
	_ "repro/internal/compressor/szx"
	_ "repro/internal/compressor/zfp"
	"repro/internal/core"
	"repro/internal/hurricane"
	_ "repro/internal/metrics"
	"repro/internal/predictors"
	"repro/internal/pressio"
	"repro/internal/stats"
)

var itDims = []int{8, 16, 16}

// TestFigure4Flow walks the paper's Figure-4 inference sketch: scheme →
// predictor → invalidations → evaluate → predict.
func TestFigure4Flow(t *testing.T) {
	session, err := core.NewSession("tao2019", "sz3")
	if err != nil {
		t.Fatal(err)
	}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1e-3)
	opts.Set(predictors.OptTaoCompressor, "sz3")
	if err := session.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	data, err := hurricane.Field("QVAPOR", 12, itDims)
	if err != nil {
		t.Fatal(err)
	}
	pred, ev, err := session.Predict(data)
	if err != nil {
		t.Fatal(err)
	}
	if pred < 1 {
		t.Errorf("prediction %v below 1", pred)
	}
	if len(ev.Recomputed) == 0 {
		t.Error("first prediction should compute metrics")
	}
	// unchanged configuration: second prediction is all cache
	_, ev2, err := session.Predict(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev2.Recomputed) != 0 {
		t.Errorf("cached prediction recomputed %v", ev2.Recomputed)
	}
	// the prediction should be in the ballpark of the real CR
	actual, _, _, err := core.ObserveTarget("sz3", data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pred/actual > 10 || actual/pred > 10 {
		t.Errorf("tao estimate %v an order of magnitude from actual %v", pred, actual)
	}
}

// TestFigure1Flow exercises the architecture interaction of Figure 1: a
// user trains predictors at scale through predict-bench, then uses the
// trained state through libpressio-predict for inference.
func TestFigure1Flow(t *testing.T) {
	// 1. predict-bench side: collect observations
	spec := &bench.Spec{
		Fields:      []string{"P", "CLOUD", "U", "QRAIN", "TC", "QVAPOR"},
		Steps:       3,
		Dims:        itDims,
		Compressors: []string{"sz3"},
		Bounds:      []float64{1e-3},
		Schemes:     []string{"rahman2023"},
		Folds:       3,
		Seed:        11,
	}
	obs, err := bench.Collect(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	// 2. train a rahman predictor on the collected observations
	scheme, err := core.GetScheme("rahman2023")
	if err != nil {
		t.Fatal(err)
	}
	var x [][]float64
	var y []float64
	for _, ob := range obs {
		fv := make([]float64, len(scheme.Features()))
		for j, k := range scheme.Features() {
			fv[j] = ob.Features[k]
		}
		x = append(x, fv)
		y = append(y, ob.CR)
	}
	trained, err := scheme.NewPredictor("sz3")
	if err != nil {
		t.Fatal(err)
	}
	if err := trained.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	state, err := trained.Save()
	if err != nil {
		t.Fatal(err)
	}

	// 3. application side: a fresh session loads the trained state and
	// predicts for new data (a field the training saw at other steps)
	session, err := core.NewSession("rahman2023", "sz3")
	if err != nil {
		t.Fatal(err)
	}
	if err := session.Predictor.Load(state); err != nil {
		t.Fatal(err)
	}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1e-3)
	if err := session.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	data, err := hurricane.Field("U", 40, itDims)
	if err != nil {
		t.Fatal(err)
	}
	pred, _, err := session.Predict(data)
	if err != nil {
		t.Fatal(err)
	}
	actual, _, _, err := core.ObserveTarget("sz3", data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-actual)/actual > 1.0 {
		t.Errorf("trained prediction %v vs actual %v (off by more than 100%%)", pred, actual)
	}
}

// TestTable2ShapeHolds asserts the qualitative Table-2 relationships the
// reproduction must preserve (EXPERIMENTS.md documents the quantities).
func TestTable2ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second pipeline")
	}
	spec := &bench.Spec{
		Fields: []string{"P", "CLOUD", "U", "QRAIN", "TC", "QVAPOR", "W", "QSNOW"},
		Steps:  4,
		Dims:   []int{8, 24, 24},
		Folds:  4,
		Seed:   3,
	}
	report, err := bench.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]bench.MethodRow{}
	for _, r := range report.Rows {
		rows[r.Compressor+"/"+r.Scheme] = r
	}
	base := map[string]bench.BaselineRow{}
	for _, b := range report.Baselines {
		base[b.Compressor] = b
	}

	// ZFP compresses faster than SZ3 (paper: 65 vs 323 ms)
	if base["zfp"].Compress.Mean >= base["sz3"].Compress.Mean {
		t.Errorf("zfp compress %.2fms should beat sz3 %.2fms",
			base["zfp"].Compress.Mean, base["sz3"].Compress.Mean)
	}
	// khan's error-dependent time is far below compression (paper: 5 vs 323)
	if k := rows["sz3/khan2023"]; k.ErrDep.Mean > base["sz3"].Compress.Mean/4 {
		t.Errorf("khan error-dependent %.3fms not well below sz3 compression %.3fms",
			k.ErrDep.Mean, base["sz3"].Compress.Mean)
	}
	// jin's error-dependent time is of compressor scale (paper: 518 vs
	// 323 = 1.6x). At this reduced grid the fixed flate/huffman setup
	// inflates compression's per-element cost, so only assert the same
	// order of magnitude here; the full-grid ratio is checked by the
	// BenchmarkJinIteratorAblation results recorded in EXPERIMENTS.md.
	if j := rows["sz3/jin2022"]; j.ErrDep.Mean < base["sz3"].Compress.Mean/4 {
		t.Errorf("jin error-dependent %.3fms unexpectedly cheap vs compression %.3fms",
			j.ErrDep.Mean, base["sz3"].Compress.Mean)
	}
	// jin does not support zfp
	if rows["zfp/jin2022"].Supported {
		t.Error("jin2022 must be N/A on zfp")
	}
	// rahman trains, fits, and infers fast (paper: 0.135 ms inference)
	r := rows["sz3/rahman2023"]
	if !r.HasFit || !r.HasInfer || !r.HasTraining {
		t.Fatalf("rahman row incomplete: %+v", r)
	}
	if r.Infer.Mean > 5 {
		t.Errorf("rahman inference %.3fms too slow", r.Infer.Mean)
	}
	// khan is the least accurate of the three on sz3 (paper: 232%% vs 26/20)
	if k, j := rows["sz3/khan2023"], rows["sz3/jin2022"]; k.MedAPE < j.MedAPE {
		t.Logf("note: khan MedAPE %.1f < jin %.1f on this reduced spec (paper has khan worst)",
			k.MedAPE, j.MedAPE)
	}
	// the table must render all rows
	text := report.Table2()
	if !strings.Contains(text, "sz3 Jin [5, 6]") || !strings.Contains(text, "zfp Khan [7]") {
		t.Errorf("Table2 rendering incomplete:\n%s", text)
	}
}

// TestSparsityHeterogeneity verifies the dataset property the paper's
// analysis hinges on: the synthetic Hurricane mixes sparse and dense
// fields whose compressibility differs by an order of magnitude.
func TestSparsityHeterogeneity(t *testing.T) {
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1e-3)
	var sparseCRs, denseCRs []float64
	for _, f := range hurricane.FieldNames {
		data, err := hurricane.Field(f, 24, itDims)
		if err != nil {
			t.Fatal(err)
		}
		cr, _, _, err := core.ObserveTarget("sz3", data, opts)
		if err != nil {
			t.Fatal(err)
		}
		if hurricane.IsSparse(f) {
			sparseCRs = append(sparseCRs, cr)
		} else {
			denseCRs = append(denseCRs, cr)
		}
	}
	if stats.Mean(sparseCRs) < 3*stats.Mean(denseCRs) {
		t.Errorf("sparse fields (mean CR %.1f) should compress far better than dense (%.1f)",
			stats.Mean(sparseCRs), stats.Mean(denseCRs))
	}
}
