// Auto-tuning: the OptZConfig / FRaZ use case (paper §2.1) — find the
// error bound that achieves a target compression ratio. Each probe of the
// search uses a prediction instead of a compressor run; invalidations let
// the error-agnostic metrics be computed once and reused across all
// probes, which is where the speedup over repeated compression comes from
// (paper §6).
//
// Run with: go run ./examples/autotuning
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	_ "repro/internal/compressor/sz3"
	"repro/internal/core"
	"repro/internal/hurricane"
	_ "repro/internal/metrics"
	_ "repro/internal/predictors"
	"repro/internal/pressio"
)

func main() {
	const targetCR = 6.0
	data, err := hurricane.Field("QVAPOR", 24, []int{16, 48, 48})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuning sz3 abs bound for CR >= %.1f on QVAPOR (%d values)\n\n", targetCR, data.Len())

	session, err := core.NewSession("jin2022", "sz3")
	if err != nil {
		log.Fatal(err)
	}

	// bisection on log10(abs) driven by predictions
	lo, hi := -8.0, -1.0 // log10 bounds
	var probes int
	start := time.Now()
	var chosen float64
	for i := 0; i < 20 && hi-lo > 0.05; i++ {
		mid := (lo + hi) / 2
		bound := math.Pow(10, mid)
		opts := pressio.Options{}
		opts.Set(pressio.OptAbs, bound)
		if err := session.SetOptions(opts); err != nil {
			log.Fatal(err)
		}
		// only the error-dependent metrics rerun on each probe
		session.Invalidate(pressio.OptAbs, pressio.InvalidateErrorDependent)
		cr, _, err := session.Predict(data)
		if err != nil {
			log.Fatal(err)
		}
		probes++
		fmt.Printf("probe %2d: abs=%.3e  predicted CR=%.2f\n", probes, bound, cr)
		if cr >= targetCR {
			chosen = bound
			hi = mid // try a tighter bound
		} else {
			lo = mid // need a looser bound
		}
	}
	searchMS := time.Since(start).Seconds() * 1e3
	if chosen == 0 {
		chosen = math.Pow(10, hi)
	}

	// validate the chosen configuration with one real run
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, chosen)
	actual, compressMS, _, err := core.ObserveTarget("sz3", data, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchosen abs=%.3e after %d predicted probes in %.1f ms\n", chosen, probes, searchMS)
	fmt.Printf("actual CR at chosen bound: %.2f (target %.1f)\n", actual, targetCR)
	fmt.Printf("one real compression takes %.1f ms — a trial-based search would have\n", compressMS)
	fmt.Printf("cost ~%d compressor runs (~%.0f ms) for the same sweep\n", probes, float64(probes)*compressMS)
}
