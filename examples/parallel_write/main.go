// Parallel shared-file write: the Jin 2022 / HDF5 use case (paper §2.1).
// Writers compressing distinct chunks of a shared file need their file
// offsets *before* compressing, so offsets are precomputed from predicted
// compressed sizes inflated by a safety factor; a chunk whose actual
// compressed size overflows its reservation falls back to an append
// region. Predictions do not need to be very accurate — they need to be
// fast and rarely under-allocate.
//
// Run with: go run ./examples/parallel_write
package main

import (
	"fmt"
	"log"
	"sync"

	_ "repro/internal/compressor/sz3"
	"repro/internal/core"
	"repro/internal/hurricane"
	_ "repro/internal/metrics"
	_ "repro/internal/predictors"
	"repro/internal/pressio"
)

// chunkInfo tracks one shared-file chunk through prediction, layout, and
// the actual write.
type chunkInfo struct {
	field         string
	data          *pressio.Data
	predictedSize int
	offset        int
	actualSize    int
	fallback      bool
}

func main() {
	const (
		abs          = 1e-3
		safetyFactor = 1.15 // 15% over-allocation (paper §2.1)
	)
	dims := []int{12, 32, 32}

	// one chunk per field at one timestep, written by parallel workers
	fields := hurricane.FieldNames
	chunks := make([]*chunkInfo, len(fields))
	for i, f := range fields {
		data, err := hurricane.Field(f, 30, dims)
		if err != nil {
			log.Fatal(err)
		}
		chunks[i] = &chunkInfo{field: f, data: data}
	}

	// 1. predict each chunk's compressed size with the fast jin2022
	// analytic model (no compressor run)
	session, err := core.NewSession("jin2022", "sz3")
	if err != nil {
		log.Fatal(err)
	}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, abs)
	if err := session.SetOptions(opts); err != nil {
		log.Fatal(err)
	}
	for _, c := range chunks {
		session.InvalidateAll() // new buffer: every metric is stale
		cr, _, err := session.Predict(c.data)
		if err != nil {
			log.Fatal(err)
		}
		c.predictedSize = int(float64(c.data.ByteSize()) / cr * safetyFactor)
	}

	// 2. precompute offsets from predicted sizes
	offset := 0
	for _, c := range chunks {
		c.offset = offset
		offset += c.predictedSize
	}
	appendRegion := offset // fallback writes land here

	// 3. "write" in parallel: compress for real, detect overflows
	var wg sync.WaitGroup
	for _, c := range chunks {
		wg.Add(1)
		go func(c *chunkInfo) {
			defer wg.Done()
			comp, err := pressio.GetCompressor("sz3")
			if err != nil {
				log.Fatal(err)
			}
			o := pressio.Options{}
			o.Set(pressio.OptAbs, abs)
			comp.SetOptions(o)
			compressed, err := comp.Compress(c.data)
			if err != nil {
				log.Fatal(err)
			}
			c.actualSize = compressed.ByteSize()
			c.fallback = c.actualSize > c.predictedSize
		}(c)
	}
	wg.Wait()

	// 4. report
	fmt.Printf("%-10s %-12s %-12s %-10s %-10s\n", "chunk", "reserved", "actual", "offset", "fallback")
	fallbacks := 0
	reserved := 0
	used := 0
	for _, c := range chunks {
		fb := ""
		if c.fallback {
			fb = "-> append"
			fallbacks++
		}
		fmt.Printf("%-10s %-12d %-12d %-10d %-10s\n", c.field, c.predictedSize, c.actualSize, c.offset, fb)
		reserved += c.predictedSize
		used += c.actualSize
	}
	fmt.Printf("\nfile layout: %d bytes reserved, append region at %d\n", reserved, appendRegion)
	fmt.Printf("mispredictions (fallback to append): %d/%d chunks\n", fallbacks, len(chunks))
	fmt.Printf("space efficiency: %.1f%% of the reservation used\n", 100*float64(used)/float64(reserved))
	fmt.Println("\nwith a safety factor, rare under-allocations fall back to appends —")
	fmt.Println("the prediction must be fast, not perfect (paper §2.1)")

	boundedReservations(chunks)
}

// boundedReservations replays the allocation with Ganguli 2023's bounded
// predictions instead of a guessed safety factor: conformal intervals on
// the predicted CR let the writer size reservations to a chosen
// misprediction probability (paper §2.1: "statistical bounds ... allowing
// precise forecasting of the number of mispredictions").
func boundedReservations(chunks []*chunkInfo) {
	const (
		abs   = 1e-3
		alpha = 0.1 // accept ≤10% under-allocations in expectation
	)
	fmt.Println("\n--- bounded reservations (ganguli2023 conformal intervals) ---")

	// train on earlier timesteps of the same fields
	session, err := core.NewSession("ganguli2023", "sz3")
	if err != nil {
		log.Fatal(err)
	}
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, abs)
	if err := session.SetOptions(opts); err != nil {
		log.Fatal(err)
	}
	var x [][]float64
	var y []float64
	dims := chunks[0].data.Dims()
	for _, f := range hurricane.FieldNames {
		for _, step := range []int{0, 8, 16, 22} {
			data, err := hurricane.Field(f, step, dims)
			if err != nil {
				log.Fatal(err)
			}
			session.InvalidateAll()
			ev, err := session.Evaluate(data)
			if err != nil {
				log.Fatal(err)
			}
			cr, _, _, err := core.ObserveTarget("sz3", data, opts)
			if err != nil {
				log.Fatal(err)
			}
			x = append(x, append([]float64(nil), ev.Features...))
			y = append(y, cr)
		}
	}
	if err := session.Predictor.Fit(x, y); err != nil {
		log.Fatal(err)
	}
	ip, ok := session.Predictor.(core.IntervalPredictor)
	if !ok {
		log.Fatal("ganguli predictor should provide intervals")
	}

	fallbacks := 0
	reserved := 0
	used := 0
	for _, c := range chunks {
		session.InvalidateAll()
		ev, err := session.Evaluate(c.data)
		if err != nil {
			log.Fatal(err)
		}
		_, loCR, _, err := ip.PredictInterval(ev.Features, alpha)
		if err != nil {
			log.Fatal(err)
		}
		// the lower CR bound gives the conservative reservation
		reservation := int(float64(c.data.ByteSize()) / loCR)
		reserved += reservation
		used += c.actualSize
		if c.actualSize > reservation {
			fallbacks++
		}
	}
	fmt.Printf("target misprediction rate: <= %.0f%%\n", alpha*100)
	fmt.Printf("observed fallbacks:        %d/%d chunks (%.0f%%)\n",
		fallbacks, len(chunks), 100*float64(fallbacks)/float64(len(chunks)))
	fmt.Printf("space efficiency:          %.1f%% of the reservation used\n",
		100*float64(used)/float64(reserved))
	fmt.Println("the interval replaces the guessed safety factor with a guarantee")
}
