// Data pipeline: the paper's Figure-2 dataset-loader stack — a folder of
// raw binaries served through the extension-dispatching io loader, a
// two-tier (memory + local disk) cache, and a sampler at the end of the
// pipeline. Demonstrates that sampling needs only metadata (unselected
// payloads are never read) and that a restart is served from the cache
// tiers.
//
// Run with: go run ./examples/datapipeline
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dataset"
	"repro/internal/hurricane"
)

func main() {
	work, err := os.MkdirTemp("", "datapipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)
	dataDir := filepath.Join(work, "hurricane")
	cacheDir := filepath.Join(work, "node-local-ssd")
	os.MkdirAll(dataDir, 0o755)

	// materialize a small dataset: 13 fields × 4 timesteps
	dims := []int{8, 32, 32}
	for _, f := range hurricane.FieldNames {
		for step := 0; step < 4; step++ {
			data, err := hurricane.Field(f, step, dims)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := dataset.WriteRaw(dataDir, fmt.Sprintf("%s.t%02d", f, step), data); err != nil {
				log.Fatal(err)
			}
		}
	}

	// the Figure-2 stack: folder -> cache -> sampler
	folder, err := dataset.NewFolder(dataDir, "*.f32")
	if err != nil {
		log.Fatal(err)
	}
	cache, err := dataset.NewCache(folder, 4<<20, cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	sampled, err := dataset.NewSampler(cache, 0.25, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: folder(%d entries) -> cache(4 MiB + %s) -> sample(%d entries)\n\n",
		folder.Len(), filepath.Base(cacheDir), sampled.Len())

	// metadata flows without payload reads
	metas, err := sampled.LoadMetadataAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sampled entries (metadata only, no payload I/O):")
	for _, m := range metas {
		fmt.Printf("  %-12s %s %v (%d bytes)\n", m.Name, m.DType, m.Dims, m.ByteSize())
	}

	// cold pass: everything misses to the folder loader
	start := time.Now()
	if _, err := sampled.LoadDataAll(); err != nil {
		log.Fatal(err)
	}
	cold := time.Since(start)
	mem, disk, miss := cache.Stats()
	fmt.Printf("\ncold load:  %8v  (cache: %d mem hits, %d disk hits, %d misses)\n", cold, mem, disk, miss)

	// warm pass: served from the memory tier
	start = time.Now()
	if _, err := sampled.LoadDataAll(); err != nil {
		log.Fatal(err)
	}
	warm := time.Since(start)
	mem, disk, miss = cache.Stats()
	fmt.Printf("warm load:  %8v  (cache: %d mem hits, %d disk hits, %d misses)\n", warm, mem, disk, miss)

	// "restart": a fresh cache over the same spill dir hits the disk tier
	cache2, err := dataset.NewCache(folder, 4<<20, cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	restarted, err := dataset.NewSampler(cache2, 0.25, 42)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if _, err := restarted.LoadDataAll(); err != nil {
		log.Fatal(err)
	}
	restart := time.Since(start)
	mem, disk, miss = cache2.Stats()
	fmt.Printf("restart:    %8v  (cache: %d mem hits, %d disk hits, %d misses)\n", restart, mem, disk, miss)
	fmt.Println("\nthe node-local tier makes restarts cheap — the Figure-2 design goal")
}
