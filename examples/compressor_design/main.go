// Counterfactual compressor design: the Wang 2023 / ZPerf use case
// (paper §2.1). Hundreds of person-hours go into designing specialized
// lossy compressors; a stage-decomposed performance model can predict how
// a *hypothetical* design would perform on an application's data before
// anyone builds it, discarding unpromising designs early.
//
// This example sweeps candidate designs — predictor stage × coder stage ×
// lossless backend — over Hurricane fields and ranks them, then verifies
// the model's ranking for the two designs that actually exist in this
// repository (sz3's lorenzo+huffman+flate vs. a huffman-only variant).
//
// Run with: go run ./examples/compressor_design
package main

import (
	"fmt"
	"log"
	"sort"

	_ "repro/internal/compressor/sz3"
	"repro/internal/core"
	"repro/internal/hurricane"
	_ "repro/internal/metrics"
	"repro/internal/predictors"
	"repro/internal/pressio"
)

type design struct {
	name      string
	predictor string
	coder     string
	lossless  string
}

func main() {
	designs := []design{
		{"lorenzo+huffman+lossless (≈ sz3)", "lorenzo", "huffman", "estimate"},
		{"lorenzo+huffman, no backend", "lorenzo", "huffman", "none"},
		{"lorenzo+ideal-entropy", "lorenzo", "entropy", "none"},
		{"interp+huffman", "interp", "huffman", "estimate"},
		{"block-regression+huffman (≈ sz2)", "regression", "huffman", "estimate"},
		{"mean-predictor+huffman", "mean", "huffman", "estimate"},
		{"lorenzo+fixed-width", "lorenzo", "fixed", "none"},
	}
	fields := []string{"P", "TC", "QVAPOR", "U", "CLOUD", "QRAIN"}
	dims := []int{12, 32, 32}
	const abs = 1e-3

	fmt.Printf("counterfactual design sweep with zperf_model (abs=%g, %d fields)\n\n", abs, len(fields))

	type scored struct {
		d      design
		meanCR float64
	}
	var results []scored
	for _, d := range designs {
		metric, err := pressio.GetMetric("zperf_model")
		if err != nil {
			log.Fatal(err)
		}
		opts := pressio.Options{}
		opts.Set(pressio.OptAbs, abs)
		opts.Set(predictors.OptZperfPredictor, d.predictor)
		opts.Set(predictors.OptZperfCoder, d.coder)
		opts.Set(predictors.OptZperfLossless, d.lossless)
		if err := metric.SetOptions(opts); err != nil {
			log.Fatal(err)
		}
		var sum float64
		for _, f := range fields {
			data, err := hurricane.Field(f, 24, dims)
			if err != nil {
				log.Fatal(err)
			}
			metric.BeginCompress(data)
			cr, _ := metric.Results().GetFloat("zperf_model:cr")
			sum += cr
		}
		results = append(results, scored{d, sum / float64(len(fields))})
	}

	sort.Slice(results, func(i, j int) bool { return results[i].meanCR > results[j].meanCR })
	fmt.Printf("%-36s %-10s\n", "candidate design", "mean CR")
	for i, r := range results {
		marker := ""
		if i == 0 {
			marker = "  <- predicted best"
		}
		fmt.Printf("%-36s %-10.2f%s\n", r.d.name, r.meanCR, marker)
	}

	// sanity-check the model against the one design that exists: sz3
	fmt.Println("\nvalidating the existing design against a real run:")
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, abs)
	var realSum float64
	for _, f := range fields {
		data, _ := hurricane.Field(f, 24, dims)
		cr, _, _, err := core.ObserveTarget("sz3", data, opts)
		if err != nil {
			log.Fatal(err)
		}
		realSum += cr
	}
	fmt.Printf("  sz3 measured mean CR: %.2f (model said %.2f for its design point)\n",
		realSum/float64(len(fields)), results[0].meanCR)
	fmt.Println("\nthe fixed-width and mean-predictor designs are predicted to lose badly —")
	fmt.Println("they can be discarded without implementing them (paper §2.1)")
}
