// Compressor selection: the earliest application of compression-ratio
// prediction (Tao 2019, paper §2.1) — choose the best-performing
// compressor for each buffer from predictions instead of running every
// candidate. The predictions only need to preserve the *ranking*; this
// example measures exactly that: how often the predicted winner matches
// the true winner, and how much compression is lost when it does not.
//
// Run with: go run ./examples/compressor_selection
package main

import (
	"fmt"
	"log"

	_ "repro/internal/compressor/lossless"
	_ "repro/internal/compressor/sz3"
	_ "repro/internal/compressor/szx"
	_ "repro/internal/compressor/zfp"
	"repro/internal/core"
	"repro/internal/hurricane"
	_ "repro/internal/metrics"
	"repro/internal/predictors"
	"repro/internal/pressio"
)

func main() {
	candidates := []string{"sz3", "zfp", "szx"}
	dims := []int{12, 32, 32}
	const abs = 1e-3

	fmt.Printf("selecting among %v with khan2023 predictions (abs=%g)\n\n", candidates, abs)
	fmt.Printf("%-10s %-28s %-10s %-10s %-8s\n", "field", "predicted CRs", "picked", "best", "ok")

	agree := 0
	var lostRatio float64
	fields := hurricane.FieldNames
	for _, field := range fields {
		data, err := hurricane.Field(field, 24, dims)
		if err != nil {
			log.Fatal(err)
		}

		// predict a CR per candidate (no compressor is run)
		predicted := map[string]float64{}
		for _, comp := range candidates {
			session, err := core.NewSession("khan2023", comp)
			if err != nil {
				log.Fatal(err)
			}
			opts := pressio.Options{}
			opts.Set(pressio.OptAbs, abs)
			opts.Set(predictors.OptKhanCompressor, comp)
			if err := session.SetOptions(opts); err != nil {
				log.Fatal(err)
			}
			cr, _, err := session.Predict(data)
			if err != nil {
				log.Fatal(err)
			}
			predicted[comp] = cr
		}
		picked := argmax(predicted)

		// ground truth: run them all
		actual := map[string]float64{}
		opts := pressio.Options{}
		opts.Set(pressio.OptAbs, abs)
		for _, comp := range candidates {
			cr, _, _, err := core.ObserveTarget(comp, data, opts)
			if err != nil {
				log.Fatal(err)
			}
			actual[comp] = cr
		}
		best := argmax(actual)

		ok := "yes"
		if picked != best {
			ok = "NO"
			lostRatio += (actual[best] - actual[picked]) / actual[best]
		} else {
			agree++
		}
		fmt.Printf("%-10s %-28s %-10s %-10s %-8s\n",
			field,
			fmt.Sprintf("sz3=%.1f zfp=%.1f szx=%.1f", predicted["sz3"], predicted["zfp"], predicted["szx"]),
			picked, best, ok)
	}

	fmt.Printf("\npicked the true winner on %d/%d fields", agree, len(fields))
	if agree < len(fields) {
		fmt.Printf("; mean CR loss on misses %.1f%%", 100*lostRatio/float64(len(fields)-agree))
	}
	fmt.Println()
	fmt.Println("ranking preservation is all this use case needs (paper §2.1)")
}

func argmax(m map[string]float64) string {
	best := ""
	bestV := -1.0
	for _, k := range []string{"sz3", "zfp", "szx"} {
		if v, ok := m[k]; ok && v > bestV {
			bestV = v
			best = k
		}
	}
	return best
}
