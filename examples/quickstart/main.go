// Quickstart: the paper's Figure-4 inference flow in Go.
//
// A user picks a prediction scheme from the registry, obtains a predictor
// for a compressor, declares which settings changed (invalidations),
// evaluates only the stale metrics, and predicts the compression ratio —
// then compares against the truth from actually running the compressor.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	_ "repro/internal/compressor/sz3"
	_ "repro/internal/compressor/zfp"
	"repro/internal/core"
	"repro/internal/hurricane"
	_ "repro/internal/metrics"
	_ "repro/internal/predictors"
	"repro/internal/pressio"
)

func main() {
	// 1. get a scheme from the registry and a predictor for sz3
	session, err := core.NewSession("jin2022", "sz3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheme %s (%s), predictor %s\n",
		session.Scheme.Name(), session.Scheme.Info().Method, session.Predictor.Name())

	// 2. configure the compressor and metrics
	opts := pressio.Options{}
	opts.Set(pressio.OptAbs, 1e-4)
	if err := session.SetOptions(opts); err != nil {
		log.Fatal(err)
	}

	// 3. load a data buffer (one synthetic Hurricane field)
	data, err := hurricane.Field("TC", 24, []int{16, 48, 48})
	if err != nil {
		log.Fatal(err)
	}

	// 4. predict: stale metrics are evaluated, cached ones reused
	predicted, ev, err := session.Predict(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated metrics: %v (error-dependent %.2f ms)\n",
		ev.Recomputed, ev.ErrorDependentMS)
	fmt.Printf("predicted CR:      %.3f\n", predicted)

	// 5. the truth, from actually running the compressor
	actual, compressMS, _, err := core.ObserveTarget("sz3", data, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("actual CR:         %.3f (compression took %.2f ms)\n", actual, compressMS)
	fmt.Printf("relative error:    %.1f%%\n", 100*abs(predicted-actual)/actual)

	// 6. change the error bound, invalidate, and predict again — only
	// the error-dependent metrics are recomputed
	opts.Set(pressio.OptAbs, 1e-6)
	if err := session.SetOptions(opts); err != nil {
		log.Fatal(err)
	}
	stale := session.Invalidate(pressio.OptAbs, pressio.InvalidateErrorDependent)
	fmt.Printf("\nafter tightening the bound to 1e-6, stale metrics: %v\n", stale)
	predicted, _, err = session.Predict(data)
	if err != nil {
		log.Fatal(err)
	}
	actual, _, _, _ = core.ObserveTarget("sz3", data, opts)
	fmt.Printf("predicted %.3f vs actual %.3f\n", predicted, actual)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
